//===- vm/DynInst.h - Dynamic instruction event -----------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c DynInst is the event the VM emits for every executed bytecode; it is
/// the interface between the VM and the microarchitecture simulator (the
/// analogue of Dynamic SimpleScalar's decoded-instruction stream).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_VM_DYNINST_H
#define DYNACE_VM_DYNINST_H

#include "isa/Opcode.h"

#include <cstdint>

namespace dynace {

/// One executed dynamic instruction.
struct DynInst {
  /// Byte address of the instruction (instruction-cache address).
  uint64_t PC = 0;
  /// Timing class.
  OpClass Class = OpClass::IntAlu;
  /// Destination register; kNoReg when none. Register ids are the frame's
  /// virtual registers; the timing model treats them as architectural names.
  uint8_t Dst = 0xff;
  uint8_t Src1 = 0xff;
  uint8_t Src2 = 0xff;
  /// Effective byte address for loads/stores; 0 otherwise.
  uint64_t MemAddr = 0;
  /// True for conditional branches.
  bool IsCondBranch = false;
  /// Branch outcome (conditional branches only).
  bool Taken = false;
  /// Byte address of the branch/jump target when control transferred.
  uint64_t Target = 0;
};

} // namespace dynace

#endif // DYNACE_VM_DYNINST_H
