//===- bbv/BbvManager.cpp -------------------------------------------------==//

#include "bbv/BbvManager.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace dynace;

BbvManager::BbvManager(std::vector<ConfigurableUnit *> Units,
                       AcePlatform Platform, const BbvConfig &Config)
    : Units(std::move(Units)), Platform(std::move(Platform)), Config(Config),
      Accum(Config.NumBuckets, Config.CounterBits),
      ReconfigsPerCu(this->Units.size(), 0) {
  assert(!this->Units.empty() && "BBV manager needs at least one CU");
  assert(this->Platform.Cycles && this->Platform.Instructions &&
         this->Platform.Energy && this->Platform.Stall &&
         "BBV manager needs a complete platform");
  // Enumerate all combinatorial configurations, all-largest first — the
  // straightforward strategy whose cost grows exponentially with the number
  // of CUs (Section 2.3). The lowest-overhead unit (L1D) varies fastest so
  // an aborted sweep still explored the cheap dimension.
  size_t Total = 1;
  for (ConfigurableUnit *U : this->Units)
    Total *= U->numSettings();
  Combos.reserve(Total);
  for (size_t Idx = 0; Idx != Total; ++Idx) {
    std::vector<unsigned> Combo;
    Combo.reserve(this->Units.size());
    size_t Rem = Idx;
    for (ConfigurableUnit *U : this->Units) {
      Combo.push_back(static_cast<unsigned>(Rem % U->numSettings()));
      Rem /= U->numSettings();
    }
    Combos.push_back(std::move(Combo));
  }
}

size_t BbvManager::classify(const std::vector<double> &V) {
  size_t Best = Phases.size();
  double BestDist = std::numeric_limits<double>::infinity();
  for (size_t I = 0, E = Phases.size(); I != E; ++I) {
    double D = BbvAccumulator::manhattanDistance(V, Phases[I].Signature);
    if (D < BestDist) {
      BestDist = D;
      Best = I;
    }
  }
  if (Best != Phases.size() && BestDist <= Config.DistanceThreshold)
    return Best;

  BbvPhaseData P;
  P.Signature = V;
  P.MeasuredIpc.assign(Combos.size(),
                       std::numeric_limits<double>::quiet_NaN());
  P.MeasuredEpi.assign(Combos.size(),
                       std::numeric_limits<double>::quiet_NaN());
  Phases.push_back(std::move(P));
  return Phases.size() - 1;
}

bool BbvManager::applyCombo(unsigned ConfigIndex, bool CountReconfig) {
  const std::vector<unsigned> &Settings = Combos[ConfigIndex];
  uint64_t Now = Platform.Instructions();
  bool AllInEffect = true;
  for (size_t I = 0, E = Units.size(); I != E; ++I) {
    CuRequestResult R =
        Units[I]->request(Settings[I], Now, Config.GuardEnabled);
    AllInEffect &= R.InEffect;
    if (R.Changed && CountReconfig)
      ++ReconfigsPerCu[I];
  }
  return AllInEffect;
}

void BbvManager::selectBestConfig(BbvPhaseData &P) {
  double IpcFloor = P.ReferenceIpc * (1.0 - Config.PerformanceThreshold);
  double EpiCeiling = std::isnan(P.MeasuredEpi[0])
                          ? std::numeric_limits<double>::infinity()
                          : P.MeasuredEpi[0] * (1.0 - Config.EpiMargin);
  unsigned Best = 0;
  double BestEpi = std::numeric_limits<double>::infinity();
  for (unsigned C = 0, E = static_cast<unsigned>(Combos.size()); C != E;
       ++C) {
    if (std::isnan(P.MeasuredEpi[C]))
      continue;
    if (C != 0 &&
        (P.MeasuredIpc[C] < IpcFloor || P.MeasuredEpi[C] > EpiCeiling))
      continue;
    if (P.MeasuredEpi[C] < BestEpi) {
      BestEpi = P.MeasuredEpi[C];
      Best = C;
    }
  }
  P.BestConfig = Best;
  P.Tuned = true;
}

void BbvManager::closeRun() {
  if (CurrentPhase < 0 || RunLength == 0)
    return;
  if (RunLength >= 2)
    StableIntervals += RunLength;
  else
    TransitionalIntervals += RunLength;
}

void BbvManager::onIntervalBoundary() {
  uint64_t IntervalLength = InstrInInterval;
  InstrInInterval = 0;
  BlockLength = 0;

  std::vector<double> V = Accum.normalized();
  Accum.reset();
  size_t P = classify(V);
  BbvPhaseData &Phase = Phases[P];
  ++Phase.Intervals;
  ++TotalIntervals;

  // Measure the just-completed interval.
  uint64_t Cycles = Platform.Cycles();
  uint64_t DeltaCycles = Cycles - IntervalStartCycles;
  double Ipc = DeltaCycles ? static_cast<double>(IntervalLength) /
                                 static_cast<double>(DeltaCycles)
                           : 0.0;
  if (DeltaCycles > 0)
    Phase.IntervalIpc.add(Ipc);

  // Attribute the measurement to the decision made at the interval's start,
  // but only when the interval was actually classified as the phase the
  // decision targeted (a mid-interval phase change spoils the test).
  if (Decision == DecisionKind::Test &&
      DecisionPhase == static_cast<int64_t>(P) && DeltaCycles > 0) {
    double Epi = (Platform.Energy() - IntervalStartEnergy) /
                 static_cast<double>(IntervalLength);
    Phase.MeasuredIpc[DecisionConfig] = Ipc;
    Phase.MeasuredEpi[DecisionConfig] = Epi;
    ++Phase.Tunings;
    Phase.Warmed = false; // The next configuration warms up afresh.
    if (Phase.InCalibration && DecisionConfig == 0) {
      // Drift-corrected reference re-measurement completed.
      Phase.InCalibration = false;
      Phase.ReferenceIpc = Ipc;
      selectBestConfig(Phase);
    } else {
      if (DecisionConfig == 0)
        Phase.ReferenceIpc = Ipc;
      if (DecisionConfig == Phase.NextConfig)
        ++Phase.NextConfig;
      bool PerfBreached =
          DecisionConfig > 0 &&
          Ipc < Phase.ReferenceIpc * (1.0 - Config.PerformanceThreshold);
      if (PerfBreached) {
        // Prune the rest of this fastest-varying group (smaller settings
        // of the first unit only get worse) and resume the sweep at the
        // next group, so the slower dimensions still get explored.
        unsigned Group = static_cast<unsigned>(Units[0]->numSettings());
        Phase.NextConfig = ((DecisionConfig / Group) + 1) * Group;
      }
      if (Phase.NextConfig >= Combos.size()) {
        if (Config.CalibrateReference)
          Phase.InCalibration = true;
        else
          selectBestConfig(Phase);
      }
    }
  }
  if (Decision != DecisionKind::None)
    ++AdaptedIntervals;

  // Stability bookkeeping.
  if (static_cast<int64_t>(P) == CurrentPhase) {
    ++RunLength;
  } else {
    closeRun();
    // Re-warm the outgoing phase's pending test: the caches will be
    // polluted by the new phase before the test can resume.
    if (CurrentPhase >= 0)
      Phases[CurrentPhase].Warmed = false;
    CurrentPhase = static_cast<int64_t>(P);
    RunLength = 1;
  }

  // Decide the next interval's configuration, predicting the current phase
  // persists (no next-phase predictor). Adaptation only once the phase has
  // proven stable (>= StableRunThreshold consecutive intervals).
  Decision = DecisionKind::None;
  DecisionPhase = static_cast<int64_t>(P);
  if (Phase.Tuned) {
    // Recurring phases reuse their stored configuration immediately — no
    // stability wait (the paper: "a recurring phase can use its chosen
    // configuration if available").
    applyCombo(Phase.BestConfig, /*CountReconfig=*/true);
    Decision = DecisionKind::Best;
  } else if (RunLength >= Config.StableRunThreshold) {
    unsigned C = Phase.InCalibration ? 0 : Phase.NextConfig;
    if (applyCombo(C, /*CountReconfig=*/false)) {
      // One warm-up interval per configuration refills the caches after
      // the reconfiguration flush; the next interval measures.
      if (Phase.Warmed) {
        Decision = DecisionKind::Test;
        DecisionConfig = C;
      } else {
        Phase.Warmed = true;
        Decision = DecisionKind::Warm;
      }
    }
  } else {
    // Transitional or brand-new untuned phase: fall back to the largest
    // (safe) configuration, as the Dhodapkar/Smith algorithm does on a
    // phase change.
    applyCombo(0, /*CountReconfig=*/false);
  }

  IntervalStartCycles = Platform.Cycles();
  IntervalStartEnergy = Platform.Energy();
}

void BbvManager::finish() {
  closeRun();
  CurrentPhase = -1;
  RunLength = 0;
}

BbvReport BbvManager::report(uint64_t TotalInstructions) const {
  BbvReport R;
  R.NumPhases = Phases.size();
  R.TotalIntervals = TotalIntervals;
  R.ReconfigsPerCu = ReconfigsPerCu;

  RunningStat PerPhaseCovs;
  RunningStat PhaseMeanIpcs;
  uint64_t IntervalsInTuned = 0;
  for (const BbvPhaseData &P : Phases) {
    if (P.Tuned) {
      ++R.TunedPhases;
      IntervalsInTuned += P.Intervals;
    }
    R.Tunings += P.Tunings;
    if (P.IntervalIpc.count() >= 2)
      PerPhaseCovs.add(P.IntervalIpc.cov());
    if (P.IntervalIpc.count() >= 1)
      PhaseMeanIpcs.add(P.IntervalIpc.mean());
  }

  uint64_t ClassifiedStable = StableIntervals;
  uint64_t ClassifiedTransitional = TransitionalIntervals;
  // Include the still-open run so end-of-program state is counted even when
  // finish() has not been called.
  if (RunLength > 0) {
    if (RunLength >= 2)
      ClassifiedStable += RunLength;
    else
      ClassifiedTransitional += RunLength;
  }
  uint64_t Classified = ClassifiedStable + ClassifiedTransitional;
  if (Classified)
    R.StableIntervalFraction =
        static_cast<double>(ClassifiedStable) /
        static_cast<double>(Classified);
  if (TotalIntervals)
    R.IntervalsInTunedPhasesFraction =
        static_cast<double>(IntervalsInTuned) /
        static_cast<double>(TotalIntervals);
  R.PerPhaseIpcCov = PerPhaseCovs.mean();
  R.InterPhaseIpcCov = PhaseMeanIpcs.cov();
  if (TotalInstructions)
    R.Coverage = static_cast<double>(AdaptedIntervals) *
                 static_cast<double>(Config.IntervalInstructions) /
                 static_cast<double>(TotalInstructions);
  return R;
}
