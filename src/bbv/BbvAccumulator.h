//===- bbv/BbvAccumulator.h - Basic block vector gathering ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Basic Block Vector accumulator of Sherwood et al. as configured in
/// Section 4.1 of the paper: an array of 32 uncompressed 24-bit buckets,
/// indexed by the low bits (excluding the 2 LSBs) of branch PCs. Each
/// executed basic block adds its instruction count to the bucket of its
/// terminating branch.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_BBV_BBVACCUMULATOR_H
#define DYNACE_BBV_BBVACCUMULATOR_H

#include <cstdint>
#include <vector>

namespace dynace {

/// Accumulates one sampling interval's basic-block vector.
class BbvAccumulator {
public:
  /// \param NumBuckets accumulator entries (power of two).
  /// \param CounterBits saturation width of each bucket (paper: 24).
  explicit BbvAccumulator(uint32_t NumBuckets = 32, uint32_t CounterBits = 24);

  /// Records a basic block of \p BlockLength instructions ending in the
  /// branch at \p BranchPC.
  void addBlock(uint64_t BranchPC, uint64_t BlockLength) {
    uint64_t &Bucket = Buckets[(BranchPC >> 2) & Mask];
    Bucket += BlockLength;
    if (Bucket > Saturation)
      Bucket = Saturation;
  }

  /// addBlock() when \p IsBlockEnd, identity otherwise — branchless, for
  /// per-instruction feeders where "is this a branch?" is the least
  /// predictable bit in the stream. The no-op case rewrites the (<= 32
  /// resident) bucket with its own value, which is observably identical.
  void addBlockIf(bool IsBlockEnd, uint64_t BranchPC, uint64_t BlockLength) {
    uint64_t &Bucket = Buckets[(BranchPC >> 2) & Mask];
    uint64_t New = Bucket + (IsBlockEnd ? BlockLength : 0);
    Bucket = New > Saturation ? Saturation : New;
  }

  /// \returns the vector normalized to sum 1 (all zeros when empty).
  std::vector<double> normalized() const;

  /// Clears all buckets for the next interval.
  void reset();

  /// Manhattan distance between two normalized vectors (range [0, 2]).
  static double manhattanDistance(const std::vector<double> &A,
                                  const std::vector<double> &B);

  uint32_t numBuckets() const {
    return static_cast<uint32_t>(Buckets.size());
  }

private:
  std::vector<uint64_t> Buckets;
  uint64_t Mask;
  uint64_t Saturation;
};

} // namespace dynace

#endif // DYNACE_BBV_BBVACCUMULATOR_H
