//===- bbv/BbvAccumulator.cpp ---------------------------------------------==//

#include "bbv/BbvAccumulator.h"

#include <bit>
#include <cassert>
#include <cmath>

using namespace dynace;

BbvAccumulator::BbvAccumulator(uint32_t NumBuckets, uint32_t CounterBits)
    : Buckets(NumBuckets, 0), Mask(NumBuckets - 1),
      Saturation((1ull << CounterBits) - 1) {
  assert(std::has_single_bit(NumBuckets) &&
         "bucket count must be a power of two");
  assert(CounterBits >= 1 && CounterBits <= 63 && "bad counter width");
}

std::vector<double> BbvAccumulator::normalized() const {
  std::vector<double> V(Buckets.size(), 0.0);
  uint64_t Total = 0;
  for (uint64_t B : Buckets)
    Total += B;
  if (Total == 0)
    return V;
  for (size_t I = 0, E = Buckets.size(); I != E; ++I)
    V[I] = static_cast<double>(Buckets[I]) / static_cast<double>(Total);
  return V;
}

void BbvAccumulator::reset() {
  for (uint64_t &B : Buckets)
    B = 0;
}

double BbvAccumulator::manhattanDistance(const std::vector<double> &A,
                                         const std::vector<double> &B) {
  assert(A.size() == B.size() && "vector size mismatch");
  double D = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    D += std::fabs(A[I] - B[I]);
  return D;
}
