//===- bbv/BbvManager.h - BBV phase-based ACE baseline ----------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison scheme of Section 5: BBV phase detection (Sherwood et al.)
/// combined with the tuning algorithm of Dhodapkar & Smith — "the best
/// technique that prior literature can contribute" per the paper.
///
///  * execution is sliced into fixed sampling intervals (1M instructions in
///    the paper, 100K here after 1/10 scaling — chosen to comply with the
///    L2's reconfiguration interval);
///  * at each boundary the interval's normalized BBV is matched against an
///    unlimited table of phase signatures by Manhattan distance;
///  * only *stable* phases (two or more consecutive intervals) are adapted;
///  * an untuned stable phase tests all 16 L1D x L2 configuration
///    combinations, one per interval; results are cached so recurring
///    phases resume tuning or apply their chosen configuration directly;
///  * no next-phase predictor is used (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_BBV_BBVMANAGER_H
#define DYNACE_BBV_BBVMANAGER_H

#include "ace/AceManager.h"
#include "ace/ConfigurableUnit.h"
#include "bbv/BbvAccumulator.h"
#include "support/Statistics.h"
#include "vm/DynInst.h"

#include <cstdint>
#include <vector>

namespace dynace {

/// BBV scheme parameters (paper values scaled by kSimScale = 10).
struct BbvConfig {
  uint64_t IntervalInstructions = 100000;
  uint32_t NumBuckets = 32;
  uint32_t CounterBits = 24;
  /// Manhattan-distance threshold on normalized vectors (range [0, 2]) for
  /// matching an interval to an existing phase. Sherwood et al. use large
  /// thresholds; intervals of the same macro phase drift as the interval
  /// window slides over sub-phases.
  double DistanceThreshold = 0.8;
  /// Tuning aborts when IPC falls more than this below the largest
  /// configuration's IPC.
  double PerformanceThreshold = 0.02;
  /// Consecutive same-phase intervals required before adapting (stable
  /// phases only, after Dhodapkar & Smith).
  uint64_t StableRunThreshold = 2;
  /// Hardware reconfiguration guard passthrough.
  bool GuardEnabled = true;
  /// Re-measure combo 0 after the sweep as the drift-corrected performance
  /// reference (see AceManagerConfig::CalibrateReference).
  bool CalibrateReference = true;
  /// Smaller combos must beat combo 0's energy-per-instruction by this
  /// margin (noise hysteresis, as in AceManagerConfig::EpiMargin).
  double EpiMargin = 0.05;
};

/// Per-phase record (signature, tuning progress, statistics).
struct BbvPhaseData {
  std::vector<double> Signature;
  uint64_t Intervals = 0;
  unsigned NextConfig = 0;
  std::vector<double> MeasuredIpc;
  std::vector<double> MeasuredEpi;
  double ReferenceIpc = 0.0;
  bool Tuned = false;
  unsigned BestConfig = 0;
  uint64_t Tunings = 0;
  /// True when the next-config warmup interval has already run (each tested
  /// configuration gets one unmeasured interval to refill the caches after
  /// the reconfiguration flush).
  bool Warmed = false;
  /// True while re-measuring combo 0 as the final reference.
  bool InCalibration = false;
  RunningStat IntervalIpc;
};

/// Aggregate BBV results for Figure 1 and Tables 5/6.
struct BbvReport {
  uint64_t NumPhases = 0;
  uint64_t TunedPhases = 0;
  uint64_t TotalIntervals = 0;
  /// Fraction of intervals in stable phases (runs of >= 2), Figure 1.
  double StableIntervalFraction = 0.0;
  /// Fraction of intervals classified into phases that completed tuning.
  double IntervalsInTunedPhasesFraction = 0.0;
  double PerPhaseIpcCov = 0.0;
  double InterPhaseIpcCov = 0.0;
  uint64_t Tunings = 0;
  /// Hardware changes while applying a tuned phase's best configuration,
  /// indexed like the unit list.
  std::vector<uint64_t> ReconfigsPerCu;
  /// Fraction of instructions executed in adapted (tested or best-config)
  /// intervals.
  double Coverage = 0.0;
};

/// Drives BBV phase detection and combinatorial tuning.
class BbvManager {
public:
  /// \param Units configurable units (same objects the ACE manager would
  ///        use); all units are adapted together at interval boundaries.
  BbvManager(std::vector<ConfigurableUnit *> Units, AcePlatform Platform,
             const BbvConfig &Config);

  /// Feeds one retired instruction; triggers boundary processing every
  /// IntervalInstructions.
  void onInstruction(const DynInst &In) {
    ++BlockLength;
    if (In.IsCondBranch) {
      Accum.addBlock(In.PC, BlockLength);
      BlockLength = 0;
    }
    if (++InstrInInterval >= Config.IntervalInstructions)
      onIntervalBoundary();
  }

  /// Feeds \p N retired instructions from \p Buf; equivalent to N
  /// onInstruction() calls. The batched simulation driver caps batches at
  /// instructionsUntilBoundary() so a boundary only ever fires on the last
  /// instruction of a batch — with the core fully caught up — but this
  /// routine stays correct for arbitrary N.
  void onInstructionBatch(const DynInst *Buf, size_t N) {
    uint64_t Length = BlockLength;
    size_t I = 0;
    while (I != N) {
      // Process up to the next interval boundary with no per-instruction
      // boundary check; the driver caps batches at
      // instructionsUntilBoundary(), so the common case is one chunk.
      const uint64_t Until = Config.IntervalInstructions - InstrInInterval;
      const size_t Left = N - I;
      const size_t Chunk =
          Left < Until ? Left : static_cast<size_t>(Until);
      for (const size_t End = I + Chunk; I != End; ++I) {
        const DynInst &In = Buf[I];
        // Block accounting as selects: whether an instruction ends a
        // block is the least predictable bit in the stream.
        ++Length;
        Accum.addBlockIf(In.IsCondBranch, In.PC, Length);
        Length = In.IsCondBranch ? 0 : Length;
      }
      InstrInInterval += Chunk;
      if (InstrInInterval >= Config.IntervalInstructions) {
        BlockLength = Length;
        onIntervalBoundary(); // Resets both counters.
        Length = BlockLength;
      }
    }
    BlockLength = Length;
  }

  /// Instructions remaining until the next interval boundary fires.
  uint64_t instructionsUntilBoundary() const {
    return Config.IntervalInstructions - InstrInInterval;
  }

  /// Flushes run-length bookkeeping at program end.
  void finish();

  /// Builds the aggregate report.
  BbvReport report(uint64_t TotalInstructions) const;

  /// Number of distinct phases observed so far.
  size_t numPhases() const { return Phases.size(); }

  const BbvPhaseData &phase(size_t Id) const { return Phases[Id]; }
  const BbvConfig &config() const { return Config; }

private:
  /// What the configuration applied for the current interval is measuring.
  /// Warm = a configuration was applied but the interval only refills the
  /// caches; the following interval measures.
  enum class DecisionKind : uint8_t { None, Warm, Test, Best };

  void onIntervalBoundary();

  /// Matches \p V against known signatures; creates a phase when no match
  /// is within the distance threshold. \returns the phase id.
  size_t classify(const std::vector<double> &V);

  /// Applies configuration combo \p ConfigIndex to all units. \returns true
  /// when every unit's requested setting is in effect.
  bool applyCombo(unsigned ConfigIndex, bool CountReconfig);

  void selectBestConfig(BbvPhaseData &P);

  /// Closes the current same-phase run (stability accounting).
  void closeRun();

  std::vector<ConfigurableUnit *> Units;
  AcePlatform Platform;
  BbvConfig Config;
  BbvAccumulator Accum;

  /// All configuration combos (cross product of unit settings), combo 0 =
  /// all-largest.
  std::vector<std::vector<unsigned>> Combos;

  std::vector<BbvPhaseData> Phases;

  uint64_t BlockLength = 0;
  uint64_t InstrInInterval = 0;

  int64_t CurrentPhase = -1;
  uint64_t RunLength = 0;
  uint64_t StableIntervals = 0;
  uint64_t TransitionalIntervals = 0;
  uint64_t TotalIntervals = 0;
  uint64_t AdaptedIntervals = 0;

  DecisionKind Decision = DecisionKind::None;
  unsigned DecisionConfig = 0;
  int64_t DecisionPhase = -1;
  uint64_t IntervalStartCycles = 0;
  double IntervalStartEnergy = 0.0;

  std::vector<uint64_t> ReconfigsPerCu;
};

} // namespace dynace

#endif // DYNACE_BBV_BBVMANAGER_H
