//===- dosys/DoSystem.h - Dynamic optimization system -----------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic dynamic optimization (DO) system in the mold of Jikes RVM's
/// adaptive optimization system (Section 3.1 / 4.2 of the paper):
///
///  * every method starts "baseline compiled"; an invocation counter stands
///    in for Jikes' timer-based sampling;
///  * once a method reaches \c HotThreshold invocations it becomes a
///    *hotspot*: the optimizing compiler recompiles it (modeled as a
///    pipeline stall) and the DO database gains a per-hotspot entry;
///  * the DO system exposes hotspot entry/exit events to a client — in this
///    project the ACE manager, which installs tuning / configuration /
///    sampling code at hotspot boundaries;
///  * per-method inclusive dynamic sizes (callees included) are tracked as
///    an exponential moving average — the paper's hotspot size, which
///    drives CU decoupling.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_DOSYS_DOSYSTEM_H
#define DYNACE_DOSYS_DOSYSTEM_H

#include "vm/Interpreter.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace dynace {

class MetricsRegistry;
class Counter;

/// Receiver of hotspot events (the ACE manager).
class DoClient {
public:
  virtual ~DoClient();

  /// A method crossed the hot threshold and was JIT-optimized.
  virtual void onHotspotDetected(MethodId Id) { (void)Id; }

  /// Control entered a detected hotspot.
  virtual void onHotspotEnter(MethodId Id) { (void)Id; }

  /// Control left a detected hotspot. \p InclusiveInstructions covers the
  /// whole invocation including callees.
  virtual void onHotspotExit(MethodId Id, uint64_t InclusiveInstructions) {
    (void)Id;
    (void)InclusiveInstructions;
  }
};

/// Cycle costs of DO services, charged to the core as stalls.
struct DoServiceCosts {
  /// Optimizing-compiler recompilation at hotspot promotion.
  uint64_t JitCompileCycles = 4000;
  /// Invocation-counter update on a not-yet-hot method entry.
  uint64_t CounterUpdateCycles = 2;
};

/// DO system parameters.
struct DoConfig {
  /// Invocations before a method is promoted to hotspot.
  uint64_t HotThreshold = 4;
  /// Alternative promotion trigger mirroring Jikes' timer-based sampling:
  /// a method is also promoted once it has accumulated this many inclusive
  /// dynamic instructions, so long-running procedures become hotspots after
  /// few invocations (value scaled by kSimScale).
  uint64_t HotSampleInstructions = 30000;
  /// EMA weight for the per-invocation inclusive-size estimate.
  double SizeEmaAlpha = 0.25;
  DoServiceCosts Costs;
};

/// Per-method DO database entry (Figure 2's "DO database").
struct DoEntry {
  uint64_t Invocations = 0;
  bool IsHotspot = false;
  /// Dynamic instruction count at promotion time.
  uint64_t DetectedAtInstr = 0;
  /// EMA of per-invocation inclusive dynamic instructions.
  double InclusiveSizeEma = 0.0;
  uint64_t SizeSamples = 0;
  /// Instructions executed (inclusively) in invocations of this method, for
  /// hotspot code-coverage accounting and sample-based promotion.
  uint64_t InclusiveInstructions = 0;
};

/// Aggregate hotspot statistics for Table 4.
struct DoStats {
  uint64_t NumHotspots = 0;
  double AvgHotspotSize = 0.0; ///< Mean of per-hotspot size EMAs.
  /// Fraction of dynamic instructions executed inside at least one hotspot.
  double HotspotCodeFraction = 0.0;
  double AvgInvocationsPerHotspot = 0.0;
  /// hot_threshold / average invocations per hotspot — the paper's estimate
  /// of identification latency as a fraction of execution.
  double IdentificationLatencyFraction = 0.0;
  /// Invocation share of the top-10% most-invoked methods — the skew
  /// measurement the theta-sweep bench reports: higher MethodZipfTheta
  /// must raise it monotonically.
  double InvocationConcentration = 0.0;
};

/// Per-tenant attribution slice of the DO database (multi-tenant mixes).
struct TenantDoStats {
  uint16_t Tenant = 0;
  uint64_t NumHotspots = 0;
  uint64_t Invocations = 0;
  uint64_t InclusiveInstructions = 0;
};

/// The DO system. Installed as the VM's listener.
class DoSystem : public VmListener {
public:
  /// \param NumMethods method count of the program under execution.
  /// \param StallFn charges DO service cycles to the core (may be empty).
  DoSystem(size_t NumMethods, const DoConfig &Config,
           std::function<void(uint64_t)> StallFn = nullptr);

  /// Installs the hotspot event receiver (may be null).
  void setClient(DoClient *C) { Client = C; }

  /// Installs the per-method tenant map of a multi-tenant mix (one tag per
  /// method, kNoTenant for untagged driver methods). Must be called before
  /// setMetrics() so the tenant-switch counter registers with the run's
  /// registry; single-tenant runs never call it and register no mix
  /// instruments.
  void setTenants(std::vector<uint16_t> TenantOfMethod);

  /// Attaches the run's metrics registry (may be null to detach). The DO
  /// system resolves its counters once here so the method-enter path never
  /// pays a registry lookup.
  void setMetrics(MetricsRegistry *M);

  // VmListener:
  void onMethodEnter(MethodId Id, uint64_t InstrCount) override;
  void onMethodExit(MethodId Id, uint64_t InclusiveInstructions,
                    uint64_t InstrCount) override;

  const DoEntry &entry(MethodId Id) const { return Entries[Id]; }
  const DoConfig &config() const { return Config; }

  /// Number of methods tracked (the program's method count).
  size_t numMethods() const { return Entries.size(); }

  /// True once \p Id has been promoted.
  bool isHotspot(MethodId Id) const { return Entries[Id].IsHotspot; }

  /// Current inclusive-size estimate for \p Id (0 before any sample).
  double hotspotSize(MethodId Id) const {
    return Entries[Id].InclusiveSizeEma;
  }

  /// Computes Table 4 statistics given the total dynamic instruction count.
  DoStats stats(uint64_t TotalInstructions) const;

  /// Per-tenant attribution (one slice per tag 1..max). Empty unless
  /// setTenants() installed a map with tagged methods.
  std::vector<TenantDoStats> tenantStats() const;

  /// Times control moved between methods of *different* tenants (the mix
  /// interference pressure the interleaving main generates). 0 without a
  /// tenant map.
  uint64_t tenantSwitches() const { return TenantSwitchCount; }

private:
  DoConfig Config;
  std::vector<DoEntry> Entries;
  std::function<void(uint64_t)> StallFn;
  DoClient *Client = nullptr;
  /// Cached do.hotspots counter (null = metrics detached).
  Counter *HotspotsCounter = nullptr;
  /// Cached mix.tenant_switches counter (null = detached or single-tenant;
  /// registered only when a tenant map is installed so canonical
  /// single-tenant snapshots gain no rows).
  Counter *TenantSwitchCounter = nullptr;

  /// Per-method tenant tags (empty = single-tenant program).
  std::vector<uint16_t> TenantOf;
  /// Tenant of the most recently entered tagged method.
  uint16_t CurrentTenant = kNoTenant;
  uint64_t TenantSwitchCount = 0;

  /// Nesting depth of hot frames, for hotspot code-coverage accounting.
  uint32_t HotDepth = 0;
  uint64_t HotRegionStartInstr = 0;
  uint64_t InstructionsInHotspots = 0;
  /// Mirrors the call stack: whether each active frame entered as a hotspot
  /// (a method promoted mid-invocation must not fire an unmatched exit).
  std::vector<bool> EnterWasHot;
};

} // namespace dynace

#endif // DYNACE_DOSYS_DOSYSTEM_H
