//===- dosys/DoSystem.cpp -------------------------------------------------==//

#include "dosys/DoSystem.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace dynace;

DoClient::~DoClient() = default;

void DoSystem::setMetrics(MetricsRegistry *M) {
  HotspotsCounter = M ? &M->counter("do.hotspots") : nullptr;
  TenantSwitchCounter =
      M && !TenantOf.empty() ? &M->counter("mix.tenant_switches") : nullptr;
}

void DoSystem::setTenants(std::vector<uint16_t> TenantOfMethod) {
  assert(TenantOfMethod.size() == Entries.size() &&
         "tenant map must cover every method");
  TenantOf = std::move(TenantOfMethod);
}

DoSystem::DoSystem(size_t NumMethods, const DoConfig &Config,
                   std::function<void(uint64_t)> StallFn)
    : Config(Config), Entries(NumMethods), StallFn(std::move(StallFn)) {
  assert(Config.HotThreshold > 0 && "hot threshold must be positive");
}

void DoSystem::onMethodEnter(MethodId Id, uint64_t InstrCount) {
  DoEntry &E = Entries[Id];
  ++E.Invocations;

  if (!TenantOf.empty()) {
    // Multi-tenant attribution: control moving into a method owned by a
    // different tenant is a tenant switch — the cross-tenant interference
    // events the mix bench correlates with retuning activity. Untagged
    // driver methods (the interleaving main) belong to no tenant and
    // neither switch nor reset.
    uint16_t T = TenantOf[Id];
    if (T != kNoTenant && T != CurrentTenant) {
      if (CurrentTenant != kNoTenant) {
        ++TenantSwitchCount;
        if (TenantSwitchCounter)
          TenantSwitchCounter->inc();
        DYNACE_TRACE_INSTANT("vm", "tenant_switch",
                             obs::traceArg("from", uint64_t(CurrentTenant)) +
                                 ", " + obs::traceArg("to", uint64_t(T)));
      }
      CurrentTenant = T;
    }
  }

  if (!E.IsHotspot) {
    // Baseline-compiled path: the instrumented prologue bumps the
    // invocation counter (Jikes' sampling stand-in). Promotion triggers on
    // either many invocations or much accumulated execution time — the
    // latter mirrors timer-based sampling, which promotes long-running
    // procedures after very few invocations.
    if (StallFn)
      StallFn(Config.Costs.CounterUpdateCycles);
    if (E.Invocations < Config.HotThreshold &&
        E.InclusiveInstructions < Config.HotSampleInstructions) {
      EnterWasHot.push_back(false);
      return;
    }
    // Promotion: the optimizing compiler recompiles the method and the DO
    // database entry becomes a hotspot entry.
    E.IsHotspot = true;
    E.DetectedAtInstr = InstrCount;
    if (HotspotsCounter)
      HotspotsCounter->inc();
    DYNACE_TRACE_INSTANT("hotspot", "promoted",
                         obs::traceArg("method", uint64_t(Id)) + ", " +
                             obs::traceArg("at_instr", InstrCount));
    if (StallFn)
      StallFn(Config.Costs.JitCompileCycles);
    if (Client)
      Client->onHotspotDetected(Id);
  }

  EnterWasHot.push_back(true);
  if (HotDepth == 0)
    HotRegionStartInstr = InstrCount;
  ++HotDepth;
  if (Client)
    Client->onHotspotEnter(Id);
}

void DoSystem::onMethodExit(MethodId Id, uint64_t InclusiveInstructions,
                            uint64_t InstrCount) {
  DoEntry &E = Entries[Id];

  // Size EMA is maintained for every method so a size estimate exists the
  // moment a method is promoted.
  double Sample = static_cast<double>(InclusiveInstructions);
  if (E.SizeSamples == 0)
    E.InclusiveSizeEma = Sample;
  else
    E.InclusiveSizeEma += Config.SizeEmaAlpha * (Sample - E.InclusiveSizeEma);
  ++E.SizeSamples;

  E.InclusiveInstructions += InclusiveInstructions;
  // The entry frame is pushed at Interpreter construction, before any
  // listener can be attached, so its enter is never observed — but the
  // halt unwind still reports its exit. There is no hot-region state to
  // undo for it.
  if (EnterWasHot.empty())
    return;
  bool WasHot = EnterWasHot.back();
  EnterWasHot.pop_back();
  if (!WasHot)
    return;
  assert(HotDepth > 0 && "hot exit without matching enter");
  --HotDepth;
  if (HotDepth == 0)
    InstructionsInHotspots += InstrCount - HotRegionStartInstr;
  if (Client)
    Client->onHotspotExit(Id, InclusiveInstructions);
}

DoStats DoSystem::stats(uint64_t TotalInstructions) const {
  DoStats S;
  RunningStat Sizes;
  uint64_t HotInvocations = 0;
  for (const DoEntry &E : Entries) {
    if (!E.IsHotspot)
      continue;
    ++S.NumHotspots;
    Sizes.add(E.InclusiveSizeEma);
    HotInvocations += E.Invocations;
  }
  S.AvgHotspotSize = Sizes.mean();
  if (TotalInstructions)
    S.HotspotCodeFraction = static_cast<double>(InstructionsInHotspots) /
                            static_cast<double>(TotalInstructions);
  if (S.NumHotspots)
    S.AvgInvocationsPerHotspot = static_cast<double>(HotInvocations) /
                                 static_cast<double>(S.NumHotspots);
  if (S.AvgInvocationsPerHotspot > 0.0)
    S.IdentificationLatencyFraction =
        static_cast<double>(Config.HotThreshold) /
        S.AvgInvocationsPerHotspot;

  // Invocation concentration: share of all invocations landing on the
  // top-10% most-invoked methods. Purely a function of the recorded
  // counters, so it is deterministic and cheap to recompute.
  std::vector<uint64_t> Invocations;
  Invocations.reserve(Entries.size());
  uint64_t TotalInvocations = 0;
  for (const DoEntry &E : Entries) {
    Invocations.push_back(E.Invocations);
    TotalInvocations += E.Invocations;
  }
  if (TotalInvocations && !Invocations.empty()) {
    std::sort(Invocations.begin(), Invocations.end(),
              std::greater<uint64_t>());
    size_t TopK = std::max<size_t>(1, (Invocations.size() + 9) / 10);
    uint64_t Head = 0;
    for (size_t I = 0; I != TopK; ++I)
      Head += Invocations[I];
    S.InvocationConcentration =
        static_cast<double>(Head) / static_cast<double>(TotalInvocations);
  }
  return S;
}

std::vector<TenantDoStats> DoSystem::tenantStats() const {
  uint16_t MaxTenant = 0;
  for (uint16_t T : TenantOf)
    MaxTenant = std::max(MaxTenant, T);
  std::vector<TenantDoStats> Out(MaxTenant);
  for (uint16_t T = 0; T != MaxTenant; ++T)
    Out[T].Tenant = T + 1;
  for (size_t Id = 0; Id != TenantOf.size(); ++Id) {
    uint16_t T = TenantOf[Id];
    if (T == kNoTenant)
      continue;
    const DoEntry &E = Entries[Id];
    TenantDoStats &S = Out[T - 1];
    S.Invocations += E.Invocations;
    S.InclusiveInstructions += E.InclusiveInstructions;
    if (E.IsHotspot)
      ++S.NumHotspots;
  }
  return Out;
}
