//===- dosys/DoSystem.cpp -------------------------------------------------==//

#include "dosys/DoSystem.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Statistics.h"

#include <cassert>

using namespace dynace;

DoClient::~DoClient() = default;

void DoSystem::setMetrics(MetricsRegistry *M) {
  HotspotsCounter = M ? &M->counter("do.hotspots") : nullptr;
}

DoSystem::DoSystem(size_t NumMethods, const DoConfig &Config,
                   std::function<void(uint64_t)> StallFn)
    : Config(Config), Entries(NumMethods), StallFn(std::move(StallFn)) {
  assert(Config.HotThreshold > 0 && "hot threshold must be positive");
}

void DoSystem::onMethodEnter(MethodId Id, uint64_t InstrCount) {
  DoEntry &E = Entries[Id];
  ++E.Invocations;

  if (!E.IsHotspot) {
    // Baseline-compiled path: the instrumented prologue bumps the
    // invocation counter (Jikes' sampling stand-in). Promotion triggers on
    // either many invocations or much accumulated execution time — the
    // latter mirrors timer-based sampling, which promotes long-running
    // procedures after very few invocations.
    if (StallFn)
      StallFn(Config.Costs.CounterUpdateCycles);
    if (E.Invocations < Config.HotThreshold &&
        E.InclusiveInstructions < Config.HotSampleInstructions) {
      EnterWasHot.push_back(false);
      return;
    }
    // Promotion: the optimizing compiler recompiles the method and the DO
    // database entry becomes a hotspot entry.
    E.IsHotspot = true;
    E.DetectedAtInstr = InstrCount;
    if (HotspotsCounter)
      HotspotsCounter->inc();
    DYNACE_TRACE_INSTANT("hotspot", "promoted",
                         obs::traceArg("method", uint64_t(Id)) + ", " +
                             obs::traceArg("at_instr", InstrCount));
    if (StallFn)
      StallFn(Config.Costs.JitCompileCycles);
    if (Client)
      Client->onHotspotDetected(Id);
  }

  EnterWasHot.push_back(true);
  if (HotDepth == 0)
    HotRegionStartInstr = InstrCount;
  ++HotDepth;
  if (Client)
    Client->onHotspotEnter(Id);
}

void DoSystem::onMethodExit(MethodId Id, uint64_t InclusiveInstructions,
                            uint64_t InstrCount) {
  DoEntry &E = Entries[Id];

  // Size EMA is maintained for every method so a size estimate exists the
  // moment a method is promoted.
  double Sample = static_cast<double>(InclusiveInstructions);
  if (E.SizeSamples == 0)
    E.InclusiveSizeEma = Sample;
  else
    E.InclusiveSizeEma += Config.SizeEmaAlpha * (Sample - E.InclusiveSizeEma);
  ++E.SizeSamples;

  assert(!EnterWasHot.empty() && "exit without matching enter");
  bool WasHot = EnterWasHot.back();
  EnterWasHot.pop_back();
  E.InclusiveInstructions += InclusiveInstructions;
  if (!WasHot)
    return;
  assert(HotDepth > 0 && "hot exit without matching enter");
  --HotDepth;
  if (HotDepth == 0)
    InstructionsInHotspots += InstrCount - HotRegionStartInstr;
  if (Client)
    Client->onHotspotExit(Id, InclusiveInstructions);
}

DoStats DoSystem::stats(uint64_t TotalInstructions) const {
  DoStats S;
  RunningStat Sizes;
  uint64_t HotInvocations = 0;
  for (const DoEntry &E : Entries) {
    if (!E.IsHotspot)
      continue;
    ++S.NumHotspots;
    Sizes.add(E.InclusiveSizeEma);
    HotInvocations += E.Invocations;
  }
  S.AvgHotspotSize = Sizes.mean();
  if (TotalInstructions)
    S.HotspotCodeFraction = static_cast<double>(InstructionsInHotspots) /
                            static_cast<double>(TotalInstructions);
  if (S.NumHotspots)
    S.AvgInvocationsPerHotspot = static_cast<double>(HotInvocations) /
                                 static_cast<double>(S.NumHotspots);
  if (S.AvgInvocationsPerHotspot > 0.0)
    S.IdentificationLatencyFraction =
        static_cast<double>(Config.HotThreshold) /
        S.AvgInvocationsPerHotspot;
  return S;
}
