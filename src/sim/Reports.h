//===- sim/Reports.h - Paper-style report printers --------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper's tables and figures from BenchmarkRun results. Each
/// function prints the same rows/series the paper reports, so bench output
/// can be compared against the paper side by side (EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_REPORTS_H
#define DYNACE_SIM_REPORTS_H

#include "sim/ExperimentRunner.h"

#include <ostream>
#include <vector>

namespace dynace {

/// Table 2: the baseline simulated-system configuration.
void printBaselineConfig(std::ostream &OS, const SimulationOptions &Opts);

/// Table 3: benchmark descriptions.
void printTable3(std::ostream &OS);

/// Figure 1: distribution of stable vs transitional BBV phases.
void printFigure1(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Table 1: measured latency comparison between the schemes.
void printTable1(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Table 4: runtime hotspot characteristics.
void printTable4(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Table 5: runtime characteristics of the hotspot and BBV approaches.
void printTable5(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Table 6: tunings, reconfigurations and coverage.
void printTable6(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Figure 3a/3b: L1D and L2 energy reduction over the baseline.
void printFigure3(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Figure 4: performance degradation over the baseline.
void printFigure4(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Experiment-pipeline accounting: one row per (benchmark, scheme) run —
/// instructions simulated, whether the on-disk cache served it, and wall
/// time — plus a totals row. Rows are sorted by (benchmark, scheme) so the
/// report is deterministic even though parallel runs complete in arbitrary
/// order; the totals row sums per-run wall times, which exceeds the
/// pipeline's wall clock by roughly the parallel speedup.
void printRunStats(std::ostream &OS, const std::vector<RunStats> &Stats);

/// The deterministic grid report of the distributed experiment service
/// (src/serve/): the energy/performance/coverage tables (Figures 3-4,
/// Table 6) plus one digest line per (benchmark, scheme) cell — an
/// FNV-1a-64 over the cell's canonical serializeResult() text. Contains
/// no wall times, host names or other nondeterminism, so a serve run is
/// bit-identical to a serial in-process run of the same grid — the
/// invariant the serve chaos tests and scripts/check_serve.sh assert.
void printGridReport(std::ostream &OS, const std::vector<BenchmarkRun> &Runs);

/// Observability metrics: the per-run MetricsSnapshot recorded by each
/// simulation under scheme \p S, one column per benchmark. Counters print
/// verbatim; histograms print as "count (p50/p99 lower bounds)"; gauges
/// with six significant digits. Rows are the union of instrument names
/// across the runs (a benchmark that never touched an instrument shows
/// "-"), so the table stays stable as instrumentation grows.
void printMetrics(std::ostream &OS, const std::vector<BenchmarkRun> &Runs,
                  Scheme S = Scheme::Hotspot);

} // namespace dynace

#endif // DYNACE_SIM_REPORTS_H
