//===- sim/System.cpp -----------------------------------------------------==//

#include "sim/System.h"

#include "obs/Profile.h"
#include "obs/Trace.h"
#include "vm/Specializer.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace dynace;

const char *dynace::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Baseline:
    return "baseline";
  case Scheme::Bbv:
    return "bbv";
  case Scheme::Hotspot:
    return "hotspot";
  }
  assert(false && "unknown scheme");
  return "?";
}

System::System(const Program &Prog, const SimulationOptions &Options)
    : Prog(Prog), Options(Options), Energy(Options.Energy) {
  Hier = std::make_unique<MemoryHierarchy>(Options.Hierarchy);
  Cpu = std::make_unique<Core>(Options.Core, *Hier);
  Meter = std::make_unique<PowerMeter>(*Hier, Energy);
  Vm = std::make_unique<Interpreter>(Prog);

  auto StallFn = [this](uint64_t Cycles) { Cpu->stall(Cycles); };

  if (Options.DoSystemAlwaysOn ||
      this->Options.SchemeKind == Scheme::Hotspot) {
    Do = std::make_unique<DoSystem>(Prog.numMethods(), Options.Do, StallFn);
    if (Prog.maxTenant() != kNoTenant) {
      // Multi-tenant mix: hand the DO system the method->tenant map so
      // hotspots are attributed per tenant and cross-tenant switches are
      // counted (before setMetrics, which registers the mix counter).
      std::vector<uint16_t> TenantOf(Prog.numMethods());
      for (MethodId Id = 0; Id != Prog.numMethods(); ++Id)
        TenantOf[Id] = Prog.method(Id).Tenant;
      Do->setTenants(std::move(TenantOf));
    }
  }

  if (this->Options.SchemeKind != Scheme::Baseline) {
    // Both adaptive schemes drive the same configurable units.
    if (Options.EnableWindowCu) {
      Cpu->configureWindowSettings(Options.WindowCuSettings);
      WindowUnit = std::make_unique<ConfigurableUnit>(
          "IQ", static_cast<unsigned>(Options.WindowCuSettings.size()),
          Options.WindowCuReconfigInterval, 0, [this](unsigned S) {
            // Draining the partitioned RUU costs a short pipeline bubble;
            // no state is written back.
            Cpu->setWindowSetting(S);
            ReconfigCost Cost;
            Cost.Changed = true;
            Cost.Cycles = 16;
            Cpu->stall(Cost.Cycles);
            return Cost;
          });
    }
    L1DUnit = std::make_unique<ConfigurableUnit>(
        "L1D", static_cast<unsigned>(Options.Hierarchy.L1DSettings.size()),
        Options.L1DReconfigInterval, Options.Hierarchy.L1DInitial,
        [this](unsigned S) {
          Meter->syncLeakage(Cpu->cycles());
          ReconfigCost Cost = Hier->reconfigureL1D(S);
          Cpu->stall(Cost.Cycles);
          return Cost;
        });
    L2Unit = std::make_unique<ConfigurableUnit>(
        "L2", static_cast<unsigned>(Options.Hierarchy.L2Settings.size()),
        Options.L2ReconfigInterval, Options.Hierarchy.L2Initial,
        [this](unsigned S) {
          Meter->syncLeakage(Cpu->cycles());
          ReconfigCost Cost = Hier->reconfigureL2(S);
          Cpu->stall(Cost.Cycles);
          return Cost;
        });
  }

  std::vector<ConfigurableUnit *> Units;
  if (WindowUnit)
    Units.push_back(WindowUnit.get());
  if (L1DUnit) {
    Units.push_back(L1DUnit.get());
    Units.push_back(L2Unit.get());
  }

  if (this->Options.SchemeKind == Scheme::Hotspot) {
    assert(Do && "hotspot scheme requires the DO system");
    AceManagerConfig AceConfig = Options.Ace;
    if (WindowUnit)
      // Sub-L1D-band hotspots become manageable through the window CU.
      AceConfig.MinHotspotSize = std::min<uint64_t>(
          AceConfig.MinHotspotSize, Options.WindowCuReconfigInterval / 2);
    Ace = std::make_unique<AceManager>(Units, *Do, makePlatform(),
                                       AceConfig);
    Do->setClient(Ace.get());
  } else if (this->Options.SchemeKind == Scheme::Bbv) {
    Bbv = std::make_unique<BbvManager>(Units, makePlatform(), Options.Bbv);
  }

  if (Do)
    Vm->setListener(Do.get());

  // Attach the per-run registry last, once every component exists; the
  // components resolve and cache their instruments here so event paths pay
  // no lookup. All per-run increments are driven by deterministic
  // simulation events, keeping the snapshot bit-identical across serial
  // and parallel pipelines (the golden test pins this).
  if (Do)
    Do->setMetrics(&RunMetrics);
  if (Ace)
    Ace->setMetrics(&RunMetrics);
  for (ConfigurableUnit *U : Units)
    U->setMetrics(&RunMetrics);
}

System::~System() = default;

double System::windowEnergy() const {
  const std::vector<uint32_t> &Settings = Cpu->windowSettings();
  const std::vector<uint64_t> &Counts = Cpu->instructionsByWindowSetting();
  double Total = 0.0;
  for (size_t I = 0, E = Settings.size(); I != E; ++I)
    Total += static_cast<double>(Counts[I]) *
             (Energy.windowDynamicPerInstr(Settings[I]) +
              // Leakage approximated per instruction at a nominal IPC of
              // 1.5; dynamic CAM energy dominates by >10x.
              Energy.windowLeakagePerCycle(Settings[I]) / 1.5);
  return Total;
}

AcePlatform System::makePlatform() {
  AcePlatform P;
  P.Cycles = [this] { return Cpu->cycles(); };
  P.Instructions = [this] { return Vm->instructionCount(); };
  bool IncludeWindow = Options.EnableWindowCu;
  P.Energy = [this, IncludeWindow] {
    Meter->syncLeakage(Cpu->cycles());
    double E = Meter->totalEnergy();
    if (IncludeWindow)
      E += windowEnergy();
    return E;
  };
  P.Stall = [this](uint64_t Cycles) { Cpu->stall(Cycles); };
  return P;
}

SimulationResult System::run() {
  Expected<SimulationResult> R = runChecked();
  if (!R)
    fatalError("simulation failed", R.status());
  return R.take();
}

void System::installSpecialization() {
  SpecRequest Req = VariantPicker::requestFromEnv(Options.Specialize);
  SpecDecision D = VariantPicker::decide(Prog, Req);
  Vm->setSpecialization(D.Image);
  // Process registry ONLY: which kernel ran (and how much of the program
  // it fused) is a property of this process's environment and calibration
  // timing, not of the simulated machine — the per-run snapshot feeds the
  // result cache and the golden digest and must not see it.
  MetricsRegistry &PM = MetricsRegistry::process();
  PM.counter(std::string("vm.specialize.pick.") +
             specVariantName(D.Variant))
      .inc();
  if (D.Image)
    PM.gauge("vm.specialize.coverage_pct").set(D.CoveragePct);
  if (D.Calibrated)
    PM.counter("vm.specialize.calibrations").inc();
}

Expected<SimulationResult> System::runChecked() {
  DYNACE_PROFILE_SCOPE("simulate");
  DYNACE_TRACE_SCOPE("vm", "run", obs::traceArg("scheme",
                                                schemeName(Options.SchemeKind)));
  installSpecialization();
  if (Status S = runLoop(); !S)
    return S;
  return collectResult();
}

Status System::runLoop() {
  // Batched hot loop: fill a fixed buffer from the VM in one tight dispatch
  // pass, then drain it through the timing model and the BBV accounting.
  // Batch length is capped so every event that observes platform state
  // still fires with the core consumed exactly through the preceding
  // instruction, keeping results bit-identical to the serial
  // step/consume/onInstruction loop:
  //  * stepBatch() stops BEFORE Call/Ret/Halt while the DO listener is
  //    installed; the boundary instruction runs through plain step() below
  //    so method-entry/exit hooks see a fully caught-up core;
  //  * batches never span a BBV interval boundary, so boundary processing
  //    (which reads cycles/energy and may stall the core) happens with the
  //    core drained, exactly as in the serial loop.
  constexpr size_t kBatchCap = 1024;
  DynInst Buf[kBatchCap];
  const uint64_t Cap = Options.MaxInstructions;
  BbvManager *BbvPtr = Bbv.get();
  // Batch-granularity observability: one counter bump and one histogram
  // record per drained batch (<= 1024 instructions), resolved to raw
  // pointers up front — ~3 relaxed atomic adds per batch, far inside the
  // microbench's regression gate. Batch lengths are themselves
  // deterministic (they depend only on the cap, the listener, and BBV
  // interval boundaries), so these metrics stay golden-stable.
  Counter &BatchCounter = RunMetrics.counter("sim.batches");
  Histogram &BatchLenHistogram = RunMetrics.histogram("sim.batch_len");
  // A boundary instruction executed via step() is not consumed immediately:
  // it stays in Buf[0..Pending) and is drained at the head of the next
  // batch. This matches the serial order exactly — step() fires the
  // listener hooks *before* the serial loop would consume the boundary
  // instruction, so stalls and reconfigurations injected by the hooks
  // land between consume calls either way — and spares a one-instruction
  // consumeBatch() (whose state hoist/write-back is sized for hundreds of
  // instructions) at every method boundary.
  size_t Pending = 0;
  // Wall-clock watchdog: one steady_clock read per batch (<=1024
  // instructions), so its overhead is noise and the overshoot past the
  // deadline is bounded by one batch.
  using Clock = std::chrono::steady_clock;
  const bool HasDeadline = Options.TimeoutMs != 0;
  const Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(Options.TimeoutMs);
  bool TimedOut = false;
  while (!Vm->isHalted() && !Vm->trapped() &&
         (Cap == 0 || Vm->instructionCount() < Cap)) {
    if (HasDeadline && Clock::now() >= Deadline) {
      TimedOut = true;
      break;
    }
    size_t Limit = kBatchCap;
    if (Cap != 0) {
      uint64_t Remaining = Cap - Vm->instructionCount();
      if (Remaining < Limit)
        Limit = static_cast<size_t>(Remaining);
    }
    if (BbvPtr) {
      // Not-yet-fed instructions, pending one included, never span an
      // interval boundary.
      uint64_t ToBoundary = BbvPtr->instructionsUntilBoundary();
      if (ToBoundary < Limit)
        Limit = static_cast<size_t>(ToBoundary);
    }
    size_t N = Pending;
    if (Limit > Pending)
      N += Vm->stepBatch(Buf + Pending, Limit - Pending);
    // No forward progress from stepBatch with room available means the
    // next instruction is a method boundary (or the program halted).
    const bool Stalled = N == Pending && Limit > Pending;
    if (N != 0) {
      Cpu->consumeBatch(Buf, N);
      if (BbvPtr)
        BbvPtr->onInstructionBatch(Buf, N);
      BatchCounter.inc();
      BatchLenHistogram.record(N);
      Pending = 0;
    }
    if (!Stalled)
      continue;
    if (Vm->isHalted())
      break;
    // Execute the boundary instruction via step() so the listener hooks
    // fire mid-instruction with the core fully caught up, as in the
    // serial loop; its consume rides with the next batch.
    if (Vm->step(Buf[0]) == Interpreter::Status::Trapped)
      break; // Nothing was filled; surface the trap below.
    Pending = 1;
  }
  if (Pending != 0) {
    Cpu->consumeBatch(Buf, Pending);
    if (BbvPtr)
      BbvPtr->onInstructionBatch(Buf, Pending);
    BatchCounter.inc();
    BatchLenHistogram.record(Pending);
  }

  if (Vm->trapped()) {
    RunMetrics.counter("vm.traps").inc();
    const TrapInfo &T = Vm->trapInfo();
    char Msg[128];
    std::snprintf(Msg, sizeof(Msg),
                  "vm trap: %s at pc 0x%llx in method %u",
                  trapKindName(T.Kind),
                  static_cast<unsigned long long>(T.PC),
                  static_cast<unsigned>(T.Method));
    return Status::error(ErrorCode::Trap, Msg);
  }
  if (TimedOut) {
    char Msg[96];
    std::snprintf(Msg, sizeof(Msg),
                  "run exceeded %llu ms after %llu instructions",
                  static_cast<unsigned long long>(Options.TimeoutMs),
                  static_cast<unsigned long long>(Vm->instructionCount()));
    return Status::error(ErrorCode::Timeout, Msg);
  }
  return Status();
}

SimulationResult System::collectResult() {
  BbvManager *BbvPtr = Bbv.get();
  if (BbvPtr)
    BbvPtr->finish();
  Meter->syncLeakage(Cpu->cycles());

  SimulationResult R;
  R.SchemeKind = Options.SchemeKind;
  R.Instructions = Vm->instructionCount();
  R.Cycles = Cpu->cycles();
  R.Ipc = Cpu->ipc();
  R.L1DEnergy = Meter->l1dEnergy();
  R.L2Energy = Meter->l2Energy();
  R.L1IEnergy = Meter->l1iEnergy();
  R.MemoryEnergy = Meter->memoryEnergy();
  R.WindowEnergy = windowEnergy();
  R.InstructionsByWindowSetting = Cpu->instructionsByWindowSetting();
  R.L1DStats = Hier->l1d().totalStats();
  R.L2Stats = Hier->l2().totalStats();
  for (unsigned S = 0, E = Hier->l1d().numSettings(); S != E; ++S)
    R.L1DAccessesBySetting.push_back(Hier->l1d().statsOf(S).accesses());
  for (unsigned S = 0, E = Hier->l2().numSettings(); S != E; ++S)
    R.L2AccessesBySetting.push_back(Hier->l2().statsOf(S).accesses());
  R.L1DHardwareReconfigs = Hier->l1d().reconfigurationCount();
  R.L2HardwareReconfigs = Hier->l2().reconfigurationCount();
  R.BranchMispredictRate = Cpu->predictor().mispredictRate();
  if (Do)
    R.Do = Do->stats(R.Instructions);
  if (Ace)
    R.Ace = Ace->report(R.Instructions);
  if (Bbv)
    R.BbvR = Bbv->report(R.Instructions);
  RunMetrics.gauge("sim.ipc").set(R.Ipc);
  RunMetrics.counter("sim.instructions").inc(R.Instructions);
  R.Metrics = RunMetrics.snapshot();
  return R;
}
