//===- sim/Reports.cpp ----------------------------------------------------==//

#include "sim/Reports.h"

#include "obs/Profile.h"
#include "obs/Trace.h"
#include "sim/ResultCache.h"
#include "support/Env.h"
#include "support/Format.h"
#include "support/Statistics.h"
#include "support/Table.h"
#include "workloads/WorkloadProfile.h"

#include <algorithm>
#include <set>

using namespace dynace;

static std::vector<std::string> benchHeader(
    const std::vector<BenchmarkRun> &Runs, bool WithAvg) {
  std::vector<std::string> H = {""};
  for (const BenchmarkRun &R : Runs)
    H.push_back(R.Name);
  if (WithAvg)
    H.push_back("avg");
  return H;
}

/// Appends the failed benchmark's "FAILED(<code>)" label to every row of
/// an incomplete column, so a cell that exhausted its retries degrades to
/// a marked column instead of dereferencing absent sub-reports. \returns
/// true when \p R is incomplete and the column was filled.
static bool markIfFailed(const BenchmarkRun &R,
                         std::initializer_list<std::vector<std::string> *>
                             Rows) {
  if (R.complete())
    return false;
  for (std::vector<std::string> *Row : Rows)
    Row->push_back(R.failureLabel());
  return true;
}

void dynace::printBaselineConfig(std::ostream &OS,
                                 const SimulationOptions &Opts) {
  const CoreConfig &C = Opts.Core;
  const HierarchyConfig &H = Opts.Hierarchy;
  TextTable T;
  T.setHeader({"Unit", "Configuration"});
  T.addRow({"CPU", "1000 MHz at 2 V (modeled energy constants)"});
  T.addRow({"Instruction window",
            std::to_string(C.WindowSize) + "-RUU, " +
                std::to_string(C.LsqSize) + "-LSQ"});
  T.addRow({"Functional units",
            std::to_string(C.NumIntAlu) + " intALU, " +
                std::to_string(C.NumIntMult) + " intMult/Div, " +
                std::to_string(C.NumFpAlu) + " FPALU, " +
                std::to_string(C.NumFpMult) + " FPMult/Div"});
  T.addRow({"Branch predictor",
            std::to_string(C.PredictorEntries) + "-entry combined, " +
                std::to_string(C.MispredictPenalty) +
                "-cycle misprediction penalty"});
  T.addRow({"Issue/Commit width",
            std::to_string(C.IssueWidth) + " instructions per cycle"});
  auto CacheDesc = [](const CacheGeometry &G) {
    return std::to_string(G.SizeBytes / 1024) + "KB, " +
           std::to_string(G.BlockBytes) + "B blocks, " +
           std::to_string(G.Assoc) + "-way, LRU, " +
           std::to_string(G.HitLatency) + "-cycle hit";
  };
  T.addRow({"L1 I-cache", CacheDesc(H.L1I)});
  std::string L1DSizes, L2Sizes;
  for (const CacheGeometry &G : H.L1DSettings)
    L1DSizes += (L1DSizes.empty() ? "" : "/") +
                std::to_string(G.SizeBytes / 1024) + "KB";
  for (const CacheGeometry &G : H.L2Settings)
    L2Sizes += (L2Sizes.empty() ? "" : "/") +
               std::to_string(G.SizeBytes / 1024) + "KB";
  T.addRow({"L1 D-cache",
            CacheDesc(H.L1DSettings.front()) + " (" + L1DSizes + ", " +
                formatCount(Opts.L1DReconfigInterval) +
                "-instr reconfig interval)"});
  T.addRow({"L2 unified cache",
            CacheDesc(H.L2Settings.front()) + " (" + L2Sizes + ", " +
                formatCount(Opts.L2ReconfigInterval) +
                "-instr reconfig interval)"});
  T.addRow({"DTLB/ITLB",
            std::to_string(H.TlbEntries) + " entries, " +
                std::to_string(H.TlbAssoc) + "-way, " +
                std::to_string(H.TlbMissPenalty) + "-cycle miss"});
  T.addRow({"Memory latency",
            std::to_string(H.MemoryLatency) + " cycles"});
  T.print(OS, "Table 2. Baseline configuration of the simulated system "
              "(intervals scaled by 1/10)");
}

void dynace::printTable3(std::ostream &OS) {
  TextTable T;
  T.setHeader({"Benchmark", "Description"});
  for (const WorkloadProfile &P : specjvm98Profiles())
    T.addRow({P.Name, P.Description});
  T.print(OS, "Table 3. Description of SPECjvm98 benchmarks (synthetic "
              "stand-ins)");
}

void dynace::printFigure1(std::ostream &OS,
                          const std::vector<BenchmarkRun> &Runs) {
  TextTable T;
  T.setHeader(benchHeader(Runs, /*WithAvg=*/true));
  std::vector<std::string> Stable = {"stable"};
  std::vector<std::string> Transitional = {"transitional"};
  RunningStat Avg;
  for (const BenchmarkRun &R : Runs) {
    if (markIfFailed(R, {&Stable, &Transitional}))
      continue; // Failed benchmarks are excluded from the average.
    double S = R.Bbv.BbvR ? R.Bbv.BbvR->StableIntervalFraction : 0.0;
    Stable.push_back(formatPercent(S, 1));
    Transitional.push_back(formatPercent(1.0 - S, 1));
    Avg.add(S);
  }
  Stable.push_back(formatPercent(Avg.mean(), 1));
  Transitional.push_back(formatPercent(1.0 - Avg.mean(), 1));
  T.addRow(Stable);
  T.addRow(Transitional);
  T.print(OS, "Figure 1. Distribution of stable/transitional BBV phases "
              "(fraction of sampling intervals)");
}

void dynace::printTable1(std::ostream &OS,
                         const std::vector<BenchmarkRun> &Runs) {
  // The paper's Table 1 is qualitative; we print its three rows with the
  // measured counterparts averaged across benchmarks.
  RunningStat IdLatency, HotspotConfigs, BbvConfigs;
  for (const BenchmarkRun &R : Runs) {
    if (!R.complete())
      continue; // Averages cover completed benchmarks only.
    IdLatency.add(R.Hotspot.Do.IdentificationLatencyFraction);
    if (R.Hotspot.Ace && R.Hotspot.Ace->TotalHotspots)
      HotspotConfigs.add(
          static_cast<double>(R.Hotspot.Ace->PerCu[0].Tunings +
                              R.Hotspot.Ace->PerCu[1].Tunings) /
          static_cast<double>(R.Hotspot.Ace->TotalHotspots));
    if (R.Bbv.BbvR && R.Bbv.BbvR->TunedPhases)
      BbvConfigs.add(static_cast<double>(R.Bbv.BbvR->Tunings) /
                     static_cast<double>(R.Bbv.BbvR->TunedPhases));
  }
  TextTable T;
  T.setHeader({"Metric", "Temporal (BBV)", "DO-based (hotspot)"});
  T.addRow({"New phase identification",
            "at least one sampling interval",
            "hot_threshold invocations (measured " +
                formatPercent(IdLatency.mean()) + " of execution)"});
  T.addRow({"Recurring phase identification", "at least one interval",
            "none (zero latency)"});
  T.addRow({"Tuning latency (configs tested per phase)",
            formatFixed(BbvConfigs.mean(), 1) + " intervals",
            formatFixed(HotspotConfigs.mean(), 1) + " invocations"});
  T.print(OS, "Table 1. Comparing the DO-based ACE management scheme with "
              "temporal approaches (measured)");
}

void dynace::printTable4(std::ostream &OS,
                         const std::vector<BenchmarkRun> &Runs) {
  TextTable T;
  T.setHeader(benchHeader(Runs, /*WithAvg=*/false));
  std::vector<std::string> Dyn = {"dynamic instruction count"};
  std::vector<std::string> Num = {"number of hotspots"};
  std::vector<std::string> Size = {"average hotspot size"};
  std::vector<std::string> Pct = {"% of code in hotspots"};
  std::vector<std::string> Inv = {"average invocations per hotspot"};
  std::vector<std::string> Lat = {"hotspot identification latency"};
  for (const BenchmarkRun &R : Runs) {
    if (markIfFailed(R, {&Dyn, &Num, &Size, &Pct, &Inv, &Lat}))
      continue;
    const DoStats &S = R.Hotspot.Do;
    Dyn.push_back(
        formatScientific(static_cast<double>(R.Hotspot.Instructions)));
    Num.push_back(std::to_string(S.NumHotspots));
    Size.push_back(formatCount(static_cast<uint64_t>(S.AvgHotspotSize)));
    Pct.push_back(formatPercent(S.HotspotCodeFraction));
    Inv.push_back(formatCount(
        static_cast<uint64_t>(S.AvgInvocationsPerHotspot)));
    Lat.push_back(formatPercent(S.IdentificationLatencyFraction));
  }
  T.addRow(Dyn);
  T.addRow(Num);
  T.addRow(Size);
  T.addRow(Pct);
  T.addRow(Inv);
  T.addRow(Lat);
  T.print(OS, "Table 4. Runtime hotspot characteristics (instruction counts "
              "~1/200 of the paper's runs)");
}

void dynace::printTable5(std::ostream &OS,
                         const std::vector<BenchmarkRun> &Runs) {
  TextTable T;
  T.setHeader(benchHeader(Runs, /*WithAvg=*/false));

  std::vector<std::string> L1D = {"number of L1D hotspots"};
  std::vector<std::string> L2 = {"number of L2 hotspots"};
  std::vector<std::string> Total = {"total number of hotspots"};
  std::vector<std::string> Tuned = {"number of tuned hotspots"};
  std::vector<std::string> TunedPct = {"% of tuned hotspots"};
  std::vector<std::string> PerCov = {"per-hotspot IPC CoV"};
  std::vector<std::string> InterCov = {"inter-hotspot IPC CoV"};
  std::vector<std::string> Phases = {"number of phases"};
  std::vector<std::string> TunedPhases = {"number of tuned phases"};
  std::vector<std::string> TunedIntervals = {
      "% of dynamic sampling intervals in tuned phases"};
  std::vector<std::string> PerPhaseCov = {"per-phase IPC CoV"};
  std::vector<std::string> InterPhaseCov = {"inter-phase IPC CoV"};

  for (const BenchmarkRun &R : Runs) {
    auto Rows = {&L1D, &L2, &Total, &Tuned, &TunedPct, &PerCov, &InterCov,
                 &Phases, &TunedPhases, &TunedIntervals, &PerPhaseCov,
                 &InterPhaseCov};
    if (markIfFailed(R, Rows))
      continue;
    if (!R.Hotspot.Ace || !R.Bbv.BbvR) {
      for (std::vector<std::string> *Row : Rows)
        Row->push_back("-");
      continue;
    }
    const AceReport &A = *R.Hotspot.Ace;
    L1D.push_back(std::to_string(A.PerCu[0].NumHotspots));
    L2.push_back(std::to_string(A.PerCu[1].NumHotspots));
    Total.push_back(std::to_string(A.TotalHotspots));
    Tuned.push_back(std::to_string(A.TunedHotspots));
    TunedPct.push_back(formatPercent(
        A.TotalHotspots ? static_cast<double>(A.TunedHotspots) /
                              static_cast<double>(A.TotalHotspots)
                        : 0.0));
    PerCov.push_back(formatPercent(A.PerHotspotIpcCov));
    InterCov.push_back(formatPercent(A.InterHotspotIpcCov));

    const BbvReport &B = *R.Bbv.BbvR;
    Phases.push_back(std::to_string(B.NumPhases));
    TunedPhases.push_back(std::to_string(B.TunedPhases));
    TunedIntervals.push_back(
        formatPercent(B.IntervalsInTunedPhasesFraction));
    PerPhaseCov.push_back(formatPercent(B.PerPhaseIpcCov));
    InterPhaseCov.push_back(formatPercent(B.InterPhaseIpcCov));
  }
  T.addRow(L1D);
  T.addRow(L2);
  T.addRow(Total);
  T.addRow(Tuned);
  T.addRow(TunedPct);
  T.addRow(PerCov);
  T.addRow(InterCov);
  T.addSeparator();
  T.addRow(Phases);
  T.addRow(TunedPhases);
  T.addRow(TunedIntervals);
  T.addRow(PerPhaseCov);
  T.addRow(InterPhaseCov);
  T.print(OS, "Table 5. Runtime characteristics of the hotspot (top) and "
              "BBV (bottom) approaches");
}

void dynace::printTable6(std::ostream &OS,
                         const std::vector<BenchmarkRun> &Runs) {
  TextTable T;
  T.setHeader(benchHeader(Runs, /*WithAvg=*/false));

  std::vector<std::string> HsL1DTun = {"hotspot: L1D tunings"};
  std::vector<std::string> HsL1DRec = {"hotspot: L1D reconfigs"};
  std::vector<std::string> HsL1DCov = {"hotspot: L1D coverage"};
  std::vector<std::string> HsL2Tun = {"hotspot: L2 tunings"};
  std::vector<std::string> HsL2Rec = {"hotspot: L2 reconfigs"};
  std::vector<std::string> HsL2Cov = {"hotspot: L2 coverage"};
  std::vector<std::string> BbTun = {"BBV: tunings"};
  std::vector<std::string> BbL1DRec = {"BBV: L1D reconfigs"};
  std::vector<std::string> BbL2Rec = {"BBV: L2 reconfigs"};
  std::vector<std::string> BbCov = {"BBV: coverage"};

  for (const BenchmarkRun &R : Runs) {
    auto Rows = {&HsL1DTun, &HsL1DRec, &HsL1DCov, &HsL2Tun, &HsL2Rec,
                 &HsL2Cov, &BbTun, &BbL1DRec, &BbL2Rec, &BbCov};
    if (markIfFailed(R, Rows))
      continue;
    if (!R.Hotspot.Ace || !R.Bbv.BbvR) {
      for (std::vector<std::string> *Row : Rows)
        Row->push_back("-");
      continue;
    }
    const AceReport &A = *R.Hotspot.Ace;
    HsL1DTun.push_back(std::to_string(A.PerCu[0].Tunings));
    HsL1DRec.push_back(std::to_string(A.PerCu[0].Reconfigs));
    HsL1DCov.push_back(formatPercent(A.PerCu[0].Coverage, 1));
    HsL2Tun.push_back(std::to_string(A.PerCu[1].Tunings));
    HsL2Rec.push_back(std::to_string(A.PerCu[1].Reconfigs));
    HsL2Cov.push_back(formatPercent(A.PerCu[1].Coverage, 1));

    const BbvReport &B = *R.Bbv.BbvR;
    BbTun.push_back(std::to_string(B.Tunings));
    BbL1DRec.push_back(std::to_string(B.ReconfigsPerCu[0]));
    BbL2Rec.push_back(std::to_string(B.ReconfigsPerCu[1]));
    BbCov.push_back(formatPercent(B.Coverage, 1));
  }
  T.addRow(HsL1DTun);
  T.addRow(HsL1DRec);
  T.addRow(HsL1DCov);
  T.addRow(HsL2Tun);
  T.addRow(HsL2Rec);
  T.addRow(HsL2Cov);
  T.addSeparator();
  T.addRow(BbTun);
  T.addRow(BbL1DRec);
  T.addRow(BbL2Rec);
  T.addRow(BbCov);
  T.print(OS, "Table 6. Tunings, reconfigurations and coverage of hotspots "
              "and BBV phases");
}

void dynace::printFigure3(std::ostream &OS,
                          const std::vector<BenchmarkRun> &Runs) {
  TextTable A;
  A.setHeader(benchHeader(Runs, /*WithAvg=*/true));
  std::vector<std::string> BbvRow = {"BBV"};
  std::vector<std::string> HotRow = {"hotspot"};
  RunningStat BbvAvg, HotAvg;
  for (const BenchmarkRun &R : Runs) {
    if (markIfFailed(R, {&BbvRow, &HotRow}))
      continue;
    double Base = R.Baseline.L1DEnergy.total();
    double B = BenchmarkRun::reduction(R.Bbv.L1DEnergy.total(), Base);
    double H = BenchmarkRun::reduction(R.Hotspot.L1DEnergy.total(), Base);
    BbvRow.push_back(formatPercent(B, 1));
    HotRow.push_back(formatPercent(H, 1));
    BbvAvg.add(B);
    HotAvg.add(H);
  }
  BbvRow.push_back(formatPercent(BbvAvg.mean(), 1));
  HotRow.push_back(formatPercent(HotAvg.mean(), 1));
  A.addRow(BbvRow);
  A.addRow(HotRow);
  A.print(OS, "Figure 3(a). L1 data cache energy reduction over baseline");

  TextTable BTab;
  BTab.setHeader(benchHeader(Runs, /*WithAvg=*/true));
  std::vector<std::string> BbvRow2 = {"BBV"};
  std::vector<std::string> HotRow2 = {"hotspot"};
  RunningStat BbvAvg2, HotAvg2;
  for (const BenchmarkRun &R : Runs) {
    if (markIfFailed(R, {&BbvRow2, &HotRow2}))
      continue;
    double Base = R.Baseline.L2Energy.total();
    double B = BenchmarkRun::reduction(R.Bbv.L2Energy.total(), Base);
    double H = BenchmarkRun::reduction(R.Hotspot.L2Energy.total(), Base);
    BbvRow2.push_back(formatPercent(B, 1));
    HotRow2.push_back(formatPercent(H, 1));
    BbvAvg2.add(B);
    HotAvg2.add(H);
  }
  BbvRow2.push_back(formatPercent(BbvAvg2.mean(), 1));
  HotRow2.push_back(formatPercent(HotAvg2.mean(), 1));
  BTab.addRow(BbvRow2);
  BTab.addRow(HotRow2);
  BTab.print(OS, "Figure 3(b). L2 cache energy reduction over baseline");
}

void dynace::printFigure4(std::ostream &OS,
                          const std::vector<BenchmarkRun> &Runs) {
  TextTable T;
  T.setHeader(benchHeader(Runs, /*WithAvg=*/true));
  std::vector<std::string> BbvRow = {"BBV"};
  std::vector<std::string> HotRow = {"hotspot"};
  RunningStat BbvAvg, HotAvg;
  for (const BenchmarkRun &R : Runs) {
    if (markIfFailed(R, {&BbvRow, &HotRow}))
      continue;
    double B = BenchmarkRun::slowdown(R.Bbv.Cycles, R.Baseline.Cycles);
    double H = BenchmarkRun::slowdown(R.Hotspot.Cycles, R.Baseline.Cycles);
    BbvRow.push_back(formatPercent(B));
    HotRow.push_back(formatPercent(H));
    BbvAvg.add(B);
    HotAvg.add(H);
  }
  BbvRow.push_back(formatPercent(BbvAvg.mean()));
  HotRow.push_back(formatPercent(HotAvg.mean()));
  T.addRow(BbvRow);
  T.addRow(HotRow);
  T.print(OS, "Figure 4. Performance degradation over the baseline "
              "(% slowdown)");
}

void dynace::printRunStats(std::ostream &OS,
                           const std::vector<RunStats> &Stats) {
  std::vector<RunStats> Sorted = Stats;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const RunStats &A, const RunStats &B) {
              if (A.Benchmark != B.Benchmark)
                return A.Benchmark < B.Benchmark;
              return static_cast<int>(A.SchemeKind) <
                     static_cast<int>(B.SchemeKind);
            });

  TextTable T;
  T.setHeader({"Run", "Instructions", "Source", "Attempts", "Wall (s)"});
  uint64_t TotalInstr = 0, Hits = 0, FailedRuns = 0, Quarantined = 0;
  double TotalWall = 0.0;
  for (const RunStats &S : Sorted) {
    std::string Source = S.Failed ? std::string("FAILED(") +
                                        errorCodeName(S.Code) + ")"
                         : S.CacheHit ? "cache"
                                      : "simulated";
    T.addRow({S.Benchmark + "/" + schemeName(S.SchemeKind),
              formatCount(S.Instructions), Source,
              std::to_string(S.Attempts), formatFixed(S.WallSeconds, 2)});
    TotalInstr += S.Instructions;
    Hits += S.CacheHit ? 1 : 0;
    FailedRuns += S.Failed ? 1 : 0;
    Quarantined += S.Quarantined;
    TotalWall += S.WallSeconds;
  }
  T.addSeparator();
  T.addRow({"total (" + std::to_string(Hits) + "/" +
                std::to_string(Sorted.size()) + " cached, " +
                std::to_string(FailedRuns) + " failed, " +
                std::to_string(Quarantined) + " quarantined)",
            formatCount(TotalInstr), "", "", formatFixed(TotalWall, 2)});
  T.print(OS, "Pipeline accounting: per-run simulation cost (summed wall "
              "times; concurrent runs overlap, so the pipeline's wall "
              "clock is lower)");

  // Point at observability artifacts so users find them without reading
  // the env-var docs. Each line appears only when the facility is on.
  const std::string &TracePath = obs::TraceCollector::instance().path();
  if (!TracePath.empty())
    OS << "Trace (Chrome trace_event JSON, open in Perfetto): " << TracePath
       << "\n";
  std::string MetricsPath = envString("DYNACE_METRICS");
  if (!MetricsPath.empty())
    OS << "Process metrics (JSON, written at exit): " << MetricsPath << "\n";
  if (obs::profileEnabled())
    OS << "Stage profile: printed to stderr at exit (DYNACE_PROFILE=1)\n";
}

void dynace::printMetrics(std::ostream &OS,
                          const std::vector<BenchmarkRun> &Runs, Scheme S) {
  auto ResultFor = [S](const BenchmarkRun &R) -> const SimulationResult & {
    switch (S) {
    case Scheme::Baseline:
      return R.Baseline;
    case Scheme::Bbv:
      return R.Bbv;
    case Scheme::Hotspot:
      break;
    }
    return R.Hotspot;
  };

  // Union of instrument names across the runs, so every row has a cell in
  // every column and the table layout is independent of which benchmark
  // happened to touch which instrument.
  std::set<std::string> CounterNames, GaugeNames, HistogramNames;
  for (const BenchmarkRun &R : Runs) {
    const MetricsSnapshot &M = ResultFor(R).Metrics;
    for (const auto &[Name, V] : M.Counters)
      CounterNames.insert(Name);
    for (const auto &[Name, V] : M.Gauges)
      GaugeNames.insert(Name);
    for (const auto &[Name, H] : M.Histograms)
      HistogramNames.insert(Name);
  }

  TextTable T;
  T.setHeader(benchHeader(Runs, /*WithAvg=*/false));
  for (const std::string &Name : CounterNames) {
    std::vector<std::string> Row = {Name};
    for (const BenchmarkRun &R : Runs) {
      const auto &M = ResultFor(R).Metrics.Counters;
      auto It = M.find(Name);
      Row.push_back(It == M.end() ? "-" : formatCount(It->second));
    }
    T.addRow(Row);
  }
  for (const std::string &Name : GaugeNames) {
    std::vector<std::string> Row = {Name};
    for (const BenchmarkRun &R : Runs) {
      const auto &M = ResultFor(R).Metrics.Gauges;
      auto It = M.find(Name);
      Row.push_back(It == M.end() ? "-" : formatFixed(It->second, 4));
    }
    T.addRow(Row);
  }
  for (const std::string &Name : HistogramNames) {
    std::vector<std::string> Row = {Name};
    for (const BenchmarkRun &R : Runs) {
      const auto &M = ResultFor(R).Metrics.Histograms;
      auto It = M.find(Name);
      if (It == M.end()) {
        Row.push_back("-");
        continue;
      }
      const HistogramSnapshot &H = It->second;
      Row.push_back(formatCount(H.Count) + " (p50>=" +
                    formatCount(H.percentileLowerBound(0.5)) + ", p99>=" +
                    formatCount(H.percentileLowerBound(0.99)) + ")");
    }
    T.addRow(Row);
  }
  T.print(OS, std::string("Observability metrics per run, ") + schemeName(S) +
                  " scheme (histograms: count and log2-bucket percentile "
                  "lower bounds)");
}

void dynace::printGridReport(std::ostream &OS,
                             const std::vector<BenchmarkRun> &Runs) {
  OS << "== DynACE grid report (" << Runs.size() << " benchmarks x 3 schemes)"
     << " ==\n\n";
  printFigure3(OS, Runs);
  OS << "\n";
  printFigure4(OS, Runs);
  OS << "\n";
  printTable6(OS, Runs);
  OS << "\nCell digests (FNV-1a-64 of the canonical result serialization)\n";
  auto Digest = [](const SimulationResult &R) {
    std::string Text = serializeResult(R);
    uint64_t H = 14695981039346656037ull;
    for (unsigned char C : Text) {
      H ^= C;
      H *= 1099511628211ull;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%016llx",
                  static_cast<unsigned long long>(H));
    return std::string(Buf);
  };
  for (const BenchmarkRun &Run : Runs)
    for (Scheme S : {Scheme::Baseline, Scheme::Bbv, Scheme::Hotspot}) {
      const SimulationResult &R = S == Scheme::Baseline ? Run.Baseline
                                  : S == Scheme::Bbv    ? Run.Bbv
                                                        : Run.Hotspot;
      OS << "  " << Run.Name << " " << schemeName(S) << " "
         << Run.outcome(S).label() << " " << Digest(R) << "\n";
    }
}
