//===- sim/ResultCache.h - On-disk simulation result cache ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persists SimulationResults to disk so the dozen benchmark binaries (one
/// per paper table/figure) can share one set of simulations. The cache key
/// hashes every option that influences results; simulations are fully
/// deterministic, so a hit is exact.
///
/// Controlled by the DYNACE_CACHE_DIR environment variable; unset disables
/// caching (every binary simulates from scratch).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_RESULTCACHE_H
#define DYNACE_SIM_RESULTCACHE_H

#include "sim/System.h"

#include <string>

namespace dynace {

/// Serializes \p R to \p Path (text, one field per line).
/// \returns false on I/O failure.
bool saveResult(const std::string &Path, const SimulationResult &R);

/// Loads a result previously written by saveResult().
/// \returns false when the file is missing or malformed.
bool loadResult(const std::string &Path, SimulationResult &R);

/// Builds a cache key for running \p BenchmarkName under \p Opts: a stable
/// hash over every option field that can influence the outcome.
std::string resultCacheKey(const std::string &BenchmarkName,
                           const SimulationOptions &Opts);

} // namespace dynace

#endif // DYNACE_SIM_RESULTCACHE_H
