//===- sim/ResultCache.h - On-disk simulation result cache ------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persists SimulationResults to disk so the dozen benchmark binaries (one
/// per paper table/figure) can share one set of simulations. The cache key
/// hashes every option that influences results; simulations are fully
/// deterministic, so a hit is exact.
///
/// Controlled by the DYNACE_CACHE_DIR environment variable; unset disables
/// the on-disk cache, leaving only the in-process memoization inside
/// ExperimentRunner (each binary then re-simulates its triples once per
/// process instead of sharing them across binaries).
///
/// The cache is safe under concurrent writers (the parallel experiment
/// pipeline, or several bench binaries sharing one directory):
///
///  * saveResult() writes to a per-process temporary file and publishes it
///    with an atomic rename(2), so readers never observe a torn entry;
///  * loadResult() verifies the version magic and every field tag, so a
///    truncated or stale file loads as a miss (re-simulate), never as
///    garbage;
///  * lockResultKey() hands out a per-key in-process mutex with which the
///    pipeline ensures two workers never simulate the same key twice;
///  * kResultCacheVersion participates in both the key hash and the file
///    magic — bump it whenever the serialization format or the set of
///    SimulationOptions fields feeding resultCacheKey() changes, and every
///    stale entry becomes unreachable instead of misread.
///
/// Failure handling (see DESIGN.md §8): the *Checked entry points report
/// structured errors instead of a bare false. A corrupt entry — bad magic
/// or a parse failure past the magic — is quarantined in place (renamed to
/// "<entry>.corrupt") so it is inspected once, never re-parsed on every
/// probe. All paths honor deterministic fault injection via
/// DYNACE_FAULT_SPEC (sites cache.read, cache.write, cache.rename).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_RESULTCACHE_H
#define DYNACE_SIM_RESULTCACHE_H

#include "sim/System.h"
#include "support/Status.h"

#include <mutex>
#include <string>

namespace dynace {

/// Version stamp of the on-disk result format and key schema. Bump on any
/// change to the serialized fields or to the inputs of resultCacheKey();
/// old entries then miss (different key and file magic) rather than being
/// reinterpreted.
constexpr unsigned kResultCacheVersion = 4; // v4: do_invocation_conc field.

/// Serializes \p R to its canonical text form — the exact bytes
/// saveResult() writes, including the version-magic first line. Fully
/// deterministic (doubles printed with %.17g round-trip exactly), so two
/// results are bit-identical iff their serializations compare equal; the
/// golden determinism test digests this string.
/// \returns the serialized text.
std::string serializeResult(const SimulationResult &R);

/// Serializes \p R to \p Path (text, one field per line).
///
/// The write is atomic: data goes to a temporary file in the same
/// directory which is then rename(2)d over \p Path, so a concurrent
/// loadResult() sees either the previous entry or the complete new one.
/// On failure the temporary is removed and the previous entry (if any)
/// is left untouched.
/// \returns ok, or IoError (create/write/rename failed) / Injected
///          (fault sites cache.write, cache.rename).
Status saveResultChecked(const std::string &Path, const SimulationResult &R);

/// Bool-returning wrapper around saveResultChecked() (the error text is
/// dropped). \returns true on success.
bool saveResult(const std::string &Path, const SimulationResult &R);

/// Parses a result from its canonical serializeResult() text held in
/// memory — the same strict parse as loadResultChecked(), with no file
/// and therefore no quarantine. The serve transport and journal use this
/// to deserialize result payloads received over the wire, which must
/// never be trusted.
/// \returns the result, or InvalidInput (malformed/truncated/bit-flipped
///          bytes) / IoError (entry of a different kResultCacheVersion).
Expected<SimulationResult> parseResultText(const std::string &Text);

/// Loads a result previously written by saveResult().
///
/// Every failure is a structured error the caller can triage:
///  * IoError — no entry (plain miss) or an entry written by a different
///    kResultCacheVersion (unreadable by design; left in place for the
///    matching binary);
///  * InvalidInput — corrupt entry (bad magic, truncation, bit flips);
///    the file is quarantined: renamed to "<Path>.corrupt" so the bytes
///    survive for inspection but the key misses cleanly from now on;
///  * Injected — deterministic fault injection (site cache.read).
/// \returns the result, or the error above.
Expected<SimulationResult> loadResultChecked(const std::string &Path);

/// Bool-returning wrapper around loadResultChecked().
/// \returns true and fills \p R on a hit; false on any miss or error.
bool loadResult(const std::string &Path, SimulationResult &R);

/// Process-wide count of cache entries quarantined by loadResultChecked()
/// since process start (monotone; the experiment pipeline diffs it around
/// a run to report per-run quarantines).
uint64_t resultCacheQuarantineCount();

/// Builds a cache key for running \p BenchmarkName under \p Opts: a stable
/// hash over kResultCacheVersion and every option field that can influence
/// the outcome.
/// \returns "<benchmark>-<scheme>-<hash>", usable as a file name.
std::string resultCacheKey(const std::string &BenchmarkName,
                           const SimulationOptions &Opts);

/// Acquires the in-process mutex associated with cache key \p Key.
///
/// Workers of the parallel pipeline take this lock around their
/// "probe cache → simulate → publish" sequence, so of two workers racing
/// on one key the loser blocks and then hits the winner's freshly written
/// entry instead of re-simulating. Locks are process-local; cross-process
/// races stay correct (atomic rename, identical results) merely wasteful.
/// \returns a held lock; releasing it (destruction) frees the key.
std::unique_lock<std::mutex> lockResultKey(const std::string &Key);

} // namespace dynace

#endif // DYNACE_SIM_RESULTCACHE_H
