//===- sim/System.h - Full-system simulation --------------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// \c System wires every subsystem together — VM, DO system, out-of-order
/// core, reconfigurable memory hierarchy, power meter, and one of the three
/// management schemes under evaluation:
///
///  * Baseline — maximum cache sizes, no adaptation (the energy reference);
///  * Bbv      — BBV phase detection + combinatorial tuning (Section 5's
///               comparison scheme);
///  * Hotspot  — the paper's DO-based ACE management framework.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_SYSTEM_H
#define DYNACE_SIM_SYSTEM_H

#include "ace/AceManager.h"
#include "bbv/BbvManager.h"
#include "cache/MemoryHierarchy.h"
#include "dosys/DoSystem.h"
#include "obs/Metrics.h"
#include "power/PowerMeter.h"
#include "support/Status.h"
#include "uarch/Core.h"
#include "vm/Interpreter.h"

#include <memory>
#include <optional>
#include <string>

namespace dynace {

/// Which management scheme a run uses.
enum class Scheme : uint8_t { Baseline, Bbv, Hotspot };

/// \returns "baseline" / "bbv" / "hotspot".
const char *schemeName(Scheme S);

/// All knobs of one simulation. Defaults reproduce the paper's setup with
/// every instruction-denominated parameter scaled by kSimScale.
struct SimulationOptions {
  Scheme SchemeKind = Scheme::Baseline;
  /// Hard cap on simulated dynamic instructions (0 = run to completion).
  uint64_t MaxInstructions = 0;
  /// Reconfiguration intervals in instructions (paper: 100K and 1M).
  uint64_t L1DReconfigInterval = 10000;
  uint64_t L2ReconfigInterval = 100000;
  DoConfig Do;
  AceManagerConfig Ace;
  BbvConfig Bbv;
  CoreConfig Core;
  HierarchyConfig Hierarchy;
  EnergyModelParams Energy;
  /// Run the DO system (JIT promotion + its overheads) in every scheme, as
  /// a JVM would. The ACE client attaches only under Scheme::Hotspot.
  bool DoSystemAlwaysOn = true;
  /// Adds a third configurable unit — the issue window (the paper's "we
  /// are implementing several more CUs, such as the issue window") — with
  /// the smallest reconfiguration interval. The hotspot scheme then also
  /// manages sub-L1D-band hotspots; the BBV baseline's combinatorial sweep
  /// grows to 64 configurations (the paper's scalability argument).
  bool EnableWindowCu = false;
  std::vector<uint32_t> WindowCuSettings = {64, 48, 32, 16};
  uint64_t WindowCuReconfigInterval = 1000;
  /// Wall-clock watchdog for runChecked(): a run exceeding this many
  /// milliseconds stops with ErrorCode::Timeout (0 = no limit). Checked
  /// once per dispatch batch, so the overshoot is bounded by one batch.
  /// Deliberately NOT part of the result-cache key: it never changes what
  /// a completed run computes, only whether it is allowed to finish.
  uint64_t TimeoutMs = 0;
  /// Interpreter-kernel specialization override (vm/Specializer.h):
  /// "0"/"generic", "1", "auto", or an explicit variant name
  /// ("fused2"/"fused3"/"branchspec"); empty defers to the
  /// DYNACE_SPECIALIZE environment variable (default "auto"). Like
  /// TimeoutMs, deliberately NOT part of the result-cache key: the §15
  /// event-stream-identity invariant guarantees every kernel variant
  /// computes bit-identical results, so the choice only changes how fast
  /// a run finishes.
  std::string Specialize;
};

/// Everything a run produces.
struct SimulationResult {
  Scheme SchemeKind = Scheme::Baseline;
  uint64_t Instructions = 0;
  uint64_t Cycles = 0;
  double Ipc = 0.0;
  EnergyBreakdown L1DEnergy;
  EnergyBreakdown L2Energy;
  EnergyBreakdown L1IEnergy;
  double MemoryEnergy = 0.0;
  /// Issue-window energy (meaningful when the window CU is enabled).
  double WindowEnergy = 0.0;
  std::vector<uint64_t> InstructionsByWindowSetting;
  CacheStats L1DStats;
  CacheStats L2Stats;
  /// Accesses served by each cache setting (index = setting, largest
  /// first) — the "residency" of the adaptation.
  std::vector<uint64_t> L1DAccessesBySetting;
  std::vector<uint64_t> L2AccessesBySetting;
  uint64_t L1DHardwareReconfigs = 0;
  uint64_t L2HardwareReconfigs = 0;
  double BranchMispredictRate = 0.0;
  DoStats Do;                     ///< Valid when the DO system ran.
  std::optional<AceReport> Ace;   ///< Hotspot scheme only.
  std::optional<BbvReport> BbvR;  ///< BBV scheme only.
  /// Per-run observability counters/histograms (DESIGN.md §9). Every value
  /// is driven by a deterministic simulation event, so the snapshot is
  /// bit-identical across serial and parallel pipelines and participates
  /// in the result cache and the golden determinism digest.
  MetricsSnapshot Metrics;
};

/// One simulated machine + program instance.
class System {
public:
  /// \param Prog finalized program; must outlive the system.
  System(const Program &Prog, const SimulationOptions &Options);
  ~System();

  /// Runs to completion (or the instruction cap).
  ///
  /// Fully deterministic and free of mutable global state: two Systems
  /// built from the same program and options produce identical results,
  /// whether they run sequentially or on concurrent threads (the basis of
  /// the parallel experiment pipeline's bit-identical guarantee).
  ///
  /// \returns the accumulated results, or a structured error:
  ///  * ErrorCode::Trap when the VM trapped (invalid opcode, bad branch
  ///    or call target, division by zero, stack overflow);
  ///  * ErrorCode::Timeout when Options.TimeoutMs elapsed first.
  /// A System that returned an error is spent; build a fresh one to retry.
  Expected<SimulationResult> runChecked();

  /// Fatal-on-error convenience wrapper around runChecked() for callers
  /// with verified programs and no timeout, where failure is a bug.
  SimulationResult run();

  // Component access for tests and examples.
  Interpreter &vm() { return *Vm; }
  Core &core() { return *Cpu; }
  MemoryHierarchy &hierarchy() { return *Hier; }
  PowerMeter &meter() { return *Meter; }
  DoSystem *doSystem() { return Do.get(); }
  AceManager *aceManager() { return Ace.get(); }
  BbvManager *bbvManager() { return Bbv.get(); }
  ConfigurableUnit *l1dUnit() { return L1DUnit.get(); }
  ConfigurableUnit *l2Unit() { return L2Unit.get(); }
  ConfigurableUnit *windowUnit() { return WindowUnit.get(); }
  const SimulationOptions &options() const { return Options; }
  /// This run's metrics registry (snapshotted into the result).
  MetricsRegistry &metrics() { return RunMetrics; }

  /// \returns the total issue-window energy so far (dynamic + approximate
  ///          leakage).
  double windowEnergy() const;

private:
  AcePlatform makePlatform();
  /// Picks and installs the interpreter-kernel variant (Options.Specialize
  /// / DYNACE_SPECIALIZE) right before the run loop starts; records the
  /// choice in the PROCESS metrics registry only, so the per-run snapshot
  /// — and with it the result cache and the golden digest — is unaffected.
  void installSpecialization();
  /// Drives the VM/core loop to halt, trap, or timeout.
  Status runLoop();
  /// Harvests the result structures after a successful runLoop().
  SimulationResult collectResult();

  const Program &Prog;
  SimulationOptions Options;
  /// Declared before the components so instruments cached by them via
  /// setMetrics() stay valid for the components' whole lifetime.
  MetricsRegistry RunMetrics;
  std::unique_ptr<MemoryHierarchy> Hier;
  std::unique_ptr<Core> Cpu;
  EnergyModel Energy;
  std::unique_ptr<PowerMeter> Meter;
  std::unique_ptr<Interpreter> Vm;
  std::unique_ptr<ConfigurableUnit> WindowUnit;
  std::unique_ptr<ConfigurableUnit> L1DUnit;
  std::unique_ptr<ConfigurableUnit> L2Unit;
  std::unique_ptr<DoSystem> Do;
  std::unique_ptr<AceManager> Ace;
  std::unique_ptr<BbvManager> Bbv;
};

} // namespace dynace

#endif // DYNACE_SIM_SYSTEM_H
