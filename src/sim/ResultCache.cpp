//===- sim/ResultCache.cpp ------------------------------------------------==//

#include "sim/ResultCache.h"

#include "support/FaultInjector.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace dynace;

namespace {

/// Simple line-oriented writer: "key value\n".
class Writer {
public:
  explicit Writer(FILE *F) : F(F) {}
  void u64(const char *Key, uint64_t V) {
    std::fprintf(F, "%s %" PRIu64 "\n", Key, V);
  }
  void f64(const char *Key, double V) {
    std::fprintf(F, "%s %.17g\n", Key, V);
  }
  void breakdown(const char *Key, const EnergyBreakdown &E) {
    std::fprintf(F, "%s %.17g %.17g %.17g\n", Key, E.Dynamic, E.Leakage,
                 E.Reconfig);
  }
  void stats(const char *Key, const CacheStats &S) {
    std::fprintf(F, "%s %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                    " %" PRIu64 "\n",
                 Key, S.Reads, S.Writes, S.ReadMisses, S.WriteMisses,
                 S.Writebacks);
  }
  void vec(const char *Key, const std::vector<uint64_t> &V) {
    std::fprintf(F, "%s %zu", Key, V.size());
    for (uint64_t X : V)
      std::fprintf(F, " %" PRIu64, X);
    std::fprintf(F, "\n");
  }

private:
  FILE *F;
};

/// Reader with per-line key verification; any mismatch poisons the load.
class Reader {
public:
  explicit Reader(FILE *F) : F(F) {}
  bool ok() const { return Ok; }

  uint64_t u64(const char *Key) {
    uint64_t V = 0;
    if (!expect(Key) || std::fscanf(F, "%" SCNu64, &V) != 1)
      Ok = false;
    return V;
  }
  double f64(const char *Key) {
    double V = 0;
    if (!expect(Key) || std::fscanf(F, "%lg", &V) != 1)
      Ok = false;
    return V;
  }
  EnergyBreakdown breakdown(const char *Key) {
    EnergyBreakdown E;
    if (!expect(Key) || std::fscanf(F, "%lg %lg %lg", &E.Dynamic, &E.Leakage,
                                    &E.Reconfig) != 3)
      Ok = false;
    return E;
  }
  CacheStats stats(const char *Key) {
    CacheStats S;
    if (!expect(Key) ||
        std::fscanf(F, "%" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                       " %" SCNu64,
                    &S.Reads, &S.Writes, &S.ReadMisses, &S.WriteMisses,
                    &S.Writebacks) != 5)
      Ok = false;
    return S;
  }
  std::vector<uint64_t> vec(const char *Key) {
    std::vector<uint64_t> V;
    size_t N = 0;
    if (!expect(Key) || std::fscanf(F, "%zu", &N) != 1 || N > 4096) {
      Ok = false;
      return V;
    }
    V.resize(N);
    for (size_t I = 0; I != N; ++I)
      if (std::fscanf(F, "%" SCNu64, &V[I]) != 1)
        Ok = false;
    return V;
  }

private:
  bool expect(const char *Key) {
    char Buf[64];
    if (std::fscanf(F, "%63s", Buf) != 1 || std::string(Buf) != Key)
      return false;
    return true;
  }

  FILE *F;
  bool Ok = true;
};

/// File magic carrying the format version; loads of any other version
/// fail cleanly and the caller re-simulates.
std::string cacheMagic() {
  return "dynace-result-v" + std::to_string(kResultCacheVersion);
}

/// A temporary-file name unique to this process and thread, placed next to
/// \p Path so the final rename stays within one filesystem.
std::string tempPathFor(const std::string &Path) {
  size_t Tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return Path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(Tid);
}

std::atomic<uint64_t> QuarantineCount{0};

/// Quarantines the corrupt entry at \p Path (best effort: a lost rename
/// race just means another reader quarantined it first) and builds the
/// InvalidInput error for the caller.
Status quarantineCorruptEntry(const std::string &Path, const char *Why) {
  if (std::rename(Path.c_str(), (Path + ".corrupt").c_str()) == 0)
    QuarantineCount.fetch_add(1, std::memory_order_relaxed);
  return Status::error(ErrorCode::InvalidInput,
                       "corrupt cache entry '" + Path + "' (" + Why +
                           "); quarantined as .corrupt");
}

} // namespace

uint64_t dynace::resultCacheQuarantineCount() {
  return QuarantineCount.load(std::memory_order_relaxed);
}

namespace {

/// Writes the canonical serialization of \p R to \p F (shared by the
/// on-disk writer and the in-memory serializer).
void writeResult(FILE *F, const SimulationResult &R) {
  std::fprintf(F, "%s\n", cacheMagic().c_str());
  Writer W(F);
  W.u64("scheme", static_cast<uint64_t>(R.SchemeKind));
  W.u64("instructions", R.Instructions);
  W.u64("cycles", R.Cycles);
  W.f64("ipc", R.Ipc);
  W.breakdown("l1d_energy", R.L1DEnergy);
  W.breakdown("l2_energy", R.L2Energy);
  W.breakdown("l1i_energy", R.L1IEnergy);
  W.f64("memory_energy", R.MemoryEnergy);
  W.f64("window_energy", R.WindowEnergy);
  W.vec("window_residency", R.InstructionsByWindowSetting);
  W.stats("l1d_stats", R.L1DStats);
  W.stats("l2_stats", R.L2Stats);
  W.vec("l1d_residency", R.L1DAccessesBySetting);
  W.vec("l2_residency", R.L2AccessesBySetting);
  W.u64("l1d_reconfigs", R.L1DHardwareReconfigs);
  W.u64("l2_reconfigs", R.L2HardwareReconfigs);
  W.f64("bp_mispredict", R.BranchMispredictRate);

  W.u64("do_hotspots", R.Do.NumHotspots);
  W.f64("do_avg_size", R.Do.AvgHotspotSize);
  W.f64("do_code_fraction", R.Do.HotspotCodeFraction);
  W.f64("do_avg_invocations", R.Do.AvgInvocationsPerHotspot);
  W.f64("do_ident_latency", R.Do.IdentificationLatencyFraction);
  W.f64("do_invocation_conc", R.Do.InvocationConcentration);

  W.u64("has_ace", R.Ace.has_value());
  if (R.Ace) {
    W.u64("ace_total", R.Ace->TotalHotspots);
    W.u64("ace_tuned", R.Ace->TunedHotspots);
    W.f64("ace_per_cov", R.Ace->PerHotspotIpcCov);
    W.f64("ace_inter_cov", R.Ace->InterHotspotIpcCov);
    W.u64("ace_percu", R.Ace->PerCu.size());
    for (const AceCuReport &Cu : R.Ace->PerCu) {
      std::fprintf(F, "cu %s\n", Cu.CuName.empty() ? "-" : Cu.CuName.c_str());
      W.u64("cu_hotspots", Cu.NumHotspots);
      W.u64("cu_tuned", Cu.TunedHotspots);
      W.u64("cu_tunings", Cu.Tunings);
      W.u64("cu_reconfigs", Cu.Reconfigs);
      W.f64("cu_coverage", Cu.Coverage);
    }
  }

  W.u64("has_bbv", R.BbvR.has_value());
  if (R.BbvR) {
    W.u64("bbv_phases", R.BbvR->NumPhases);
    W.u64("bbv_tuned", R.BbvR->TunedPhases);
    W.u64("bbv_intervals", R.BbvR->TotalIntervals);
    W.f64("bbv_stable", R.BbvR->StableIntervalFraction);
    W.f64("bbv_tuned_frac", R.BbvR->IntervalsInTunedPhasesFraction);
    W.f64("bbv_per_cov", R.BbvR->PerPhaseIpcCov);
    W.f64("bbv_inter_cov", R.BbvR->InterPhaseIpcCov);
    W.u64("bbv_tunings", R.BbvR->Tunings);
    W.vec("bbv_reconfigs", R.BbvR->ReconfigsPerCu);
    W.f64("bbv_coverage", R.BbvR->Coverage);
  }

  // v3: the per-run metrics snapshot. Names are dot-separated identifiers
  // (no whitespace), so key-value lines round-trip through fscanf %s. The
  // std::map ordering makes the serialization canonical — the golden
  // determinism digest covers these fields too.
  const MetricsSnapshot &M = R.Metrics;
  W.u64("metrics_counters", M.Counters.size());
  for (const auto &[Name, V] : M.Counters)
    std::fprintf(F, "mc %s %" PRIu64 "\n", Name.c_str(), V);
  W.u64("metrics_gauges", M.Gauges.size());
  for (const auto &[Name, V] : M.Gauges)
    std::fprintf(F, "mg %s %.17g\n", Name.c_str(), V);
  W.u64("metrics_histograms", M.Histograms.size());
  for (const auto &[Name, H] : M.Histograms) {
    std::fprintf(F, "mh %s %" PRIu64 " %zu", Name.c_str(), H.Sum,
                 H.Buckets.size());
    for (uint64_t B : H.Buckets)
      std::fprintf(F, " %" PRIu64, B);
    std::fprintf(F, "\n");
  }
  // Explicit terminator: the metrics block ends in free-form digit runs,
  // so without this a truncation inside the final bucket counts would
  // still parse (as a shortened value). The loader requires the marker.
  std::fprintf(F, "end\n");
}

} // namespace

std::string dynace::serializeResult(const SimulationResult &R) {
  char *Buf = nullptr;
  size_t Size = 0;
  FILE *F = ::open_memstream(&Buf, &Size);
  if (!F)
    return "";
  writeResult(F, R);
  std::fclose(F);
  std::string Out(Buf, Size);
  std::free(Buf);
  return Out;
}

Status dynace::saveResultChecked(const std::string &Path,
                                 const SimulationResult &R) {
  FaultInjector &FI = FaultInjector::instance();
  if (FI.shouldFail(FaultSite::CacheWrite))
    return FaultInjector::makeError(FaultSite::CacheWrite);

  // Write-to-temp-then-rename: a concurrent reader of Path either misses
  // (no file yet) or reads a complete entry, never a torn one.
  std::string Tmp = tempPathFor(Path);
  FILE *F = std::fopen(Tmp.c_str(), "w");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "cannot create '" + Tmp +
                             "': " + std::strerror(errno));
  writeResult(F, R);
  if (std::fclose(F) != 0) {
    std::remove(Tmp.c_str());
    return Status::error(ErrorCode::IoError,
                         "short write to '" + Tmp +
                             "': " + std::strerror(errno));
  }
  if (FI.shouldFail(FaultSite::CacheRename)) {
    std::remove(Tmp.c_str());
    return FaultInjector::makeError(FaultSite::CacheRename);
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Status S = Status::error(ErrorCode::IoError,
                             "cannot publish '" + Path +
                                 "': " + std::strerror(errno));
    std::remove(Tmp.c_str());
    return S;
  }
  return Status();
}

bool dynace::saveResult(const std::string &Path, const SimulationResult &R) {
  return saveResultChecked(Path, R).ok();
}

namespace {

/// Parses one serialized result from \p F (which is NOT closed). Every
/// failure is InvalidInput carrying the reason — the file loader maps that
/// to quarantine, the in-memory parsers surface it as-is — except a
/// well-formed entry of another kResultCacheVersion, which is IoError (a
/// plain miss for the file loader, "stale version" for wire payloads).
Expected<SimulationResult> parseResultStream(FILE *F) {
  auto Corrupt = [](const char *Why) {
    return Status::error(ErrorCode::InvalidInput, Why);
  };
  char Magic[64] = {0};
  if (std::fscanf(F, "%63s", Magic) != 1)
    return Corrupt("empty or unreadable header");
  if (std::string(Magic) != cacheMagic()) {
    // An entry from another format version is expected in a shared cache
    // directory (old binaries, future binaries): a plain miss, left in
    // place. Anything else claiming to be a cache entry is corruption.
    if (std::string(Magic).rfind("dynace-result-v", 0) == 0)
      return Status::error(ErrorCode::IoError,
                           std::string("stale entry version ") + Magic +
                               ", want " + cacheMagic());
    return Corrupt("bad magic");
  }
  Reader In(F);
  SimulationResult R;
  R.SchemeKind = static_cast<Scheme>(In.u64("scheme"));
  R.Instructions = In.u64("instructions");
  R.Cycles = In.u64("cycles");
  R.Ipc = In.f64("ipc");
  R.L1DEnergy = In.breakdown("l1d_energy");
  R.L2Energy = In.breakdown("l2_energy");
  R.L1IEnergy = In.breakdown("l1i_energy");
  R.MemoryEnergy = In.f64("memory_energy");
  R.WindowEnergy = In.f64("window_energy");
  R.InstructionsByWindowSetting = In.vec("window_residency");
  R.L1DStats = In.stats("l1d_stats");
  R.L2Stats = In.stats("l2_stats");
  R.L1DAccessesBySetting = In.vec("l1d_residency");
  R.L2AccessesBySetting = In.vec("l2_residency");
  R.L1DHardwareReconfigs = In.u64("l1d_reconfigs");
  R.L2HardwareReconfigs = In.u64("l2_reconfigs");
  R.BranchMispredictRate = In.f64("bp_mispredict");

  R.Do.NumHotspots = In.u64("do_hotspots");
  R.Do.AvgHotspotSize = In.f64("do_avg_size");
  R.Do.HotspotCodeFraction = In.f64("do_code_fraction");
  R.Do.AvgInvocationsPerHotspot = In.f64("do_avg_invocations");
  R.Do.IdentificationLatencyFraction = In.f64("do_ident_latency");
  R.Do.InvocationConcentration = In.f64("do_invocation_conc");

  if (In.u64("has_ace")) {
    AceReport Ace;
    Ace.TotalHotspots = In.u64("ace_total");
    Ace.TunedHotspots = In.u64("ace_tuned");
    Ace.PerHotspotIpcCov = In.f64("ace_per_cov");
    Ace.InterHotspotIpcCov = In.f64("ace_inter_cov");
    uint64_t N = In.u64("ace_percu");
    for (uint64_t I = 0; I != N && I < 64 && In.ok(); ++I) {
      AceCuReport Cu;
      char Key[64], Name[64];
      if (std::fscanf(F, "%63s %63s", Key, Name) != 2 ||
          std::string(Key) != "cu")
        return Corrupt("malformed cu record");
      Cu.CuName = Name;
      Cu.NumHotspots = In.u64("cu_hotspots");
      Cu.TunedHotspots = In.u64("cu_tuned");
      Cu.Tunings = In.u64("cu_tunings");
      Cu.Reconfigs = In.u64("cu_reconfigs");
      Cu.Coverage = In.f64("cu_coverage");
      Ace.PerCu.push_back(std::move(Cu));
    }
    R.Ace = std::move(Ace);
  }

  if (In.u64("has_bbv")) {
    BbvReport B;
    B.NumPhases = In.u64("bbv_phases");
    B.TunedPhases = In.u64("bbv_tuned");
    B.TotalIntervals = In.u64("bbv_intervals");
    B.StableIntervalFraction = In.f64("bbv_stable");
    B.IntervalsInTunedPhasesFraction = In.f64("bbv_tuned_frac");
    B.PerPhaseIpcCov = In.f64("bbv_per_cov");
    B.InterPhaseIpcCov = In.f64("bbv_inter_cov");
    B.Tunings = In.u64("bbv_tunings");
    B.ReconfigsPerCu = In.vec("bbv_reconfigs");
    B.Coverage = In.f64("bbv_coverage");
    R.BbvR = std::move(B);
  }

  // Metrics snapshot (v3). Instrument counts and bucket counts are capped
  // so corrupted sizes cannot drive unbounded loops or allocations.
  constexpr uint64_t kMaxInstruments = 512;
  uint64_t NumCounters = In.u64("metrics_counters");
  if (In.ok() && NumCounters > kMaxInstruments)
    return Corrupt("metrics counter count out of range");
  // Names load into std::map, so the canonical serialization is sorted;
  // requiring strictly increasing identifier-charset names on the way in
  // makes the parse byte-faithful (a corrupted name that reorders — or
  // duplicates — a key would otherwise reserialize differently than the
  // bytes on disk, and instrument names are dot-separated identifiers by
  // construction, so anything else is corruption).
  auto ValidMetricName = [](const char *Name) {
    for (const char *P = Name; *P; ++P)
      if (!std::isalnum(static_cast<unsigned char>(*P)) && *P != '.' &&
          *P != '_' && *P != '-' && *P != '#')
        return false;
    return Name[0] != '\0';
  };
  std::string PrevName;
  for (uint64_t I = 0; I != NumCounters && In.ok(); ++I) {
    char Key[8], Name[128];
    uint64_t V = 0;
    if (std::fscanf(F, "%7s %127s %" SCNu64, Key, Name, &V) != 3 ||
        std::string(Key) != "mc" || !ValidMetricName(Name) ||
        Name <= PrevName)
      return Corrupt("malformed metrics counter");
    PrevName = Name;
    R.Metrics.Counters[Name] = V;
  }
  uint64_t NumGauges = In.u64("metrics_gauges");
  if (In.ok() && NumGauges > kMaxInstruments)
    return Corrupt("metrics gauge count out of range");
  PrevName.clear();
  for (uint64_t I = 0; I != NumGauges && In.ok(); ++I) {
    char Key[8], Name[128];
    double V = 0;
    if (std::fscanf(F, "%7s %127s %lg", Key, Name, &V) != 3 ||
        std::string(Key) != "mg" || !ValidMetricName(Name) ||
        Name <= PrevName)
      return Corrupt("malformed metrics gauge");
    PrevName = Name;
    R.Metrics.Gauges[Name] = V;
  }
  uint64_t NumHistograms = In.u64("metrics_histograms");
  if (In.ok() && NumHistograms > kMaxInstruments)
    return Corrupt("metrics histogram count out of range");
  PrevName.clear();
  for (uint64_t I = 0; I != NumHistograms && In.ok(); ++I) {
    char Key[8], Name[128];
    uint64_t Sum = 0;
    size_t NumBuckets = 0;
    if (std::fscanf(F, "%7s %127s %" SCNu64 " %zu", Key, Name, &Sum,
                    &NumBuckets) != 4 ||
        std::string(Key) != "mh" || !ValidMetricName(Name) ||
        Name <= PrevName ||
        NumBuckets > kHistogramBuckets)
      return Corrupt("malformed metrics histogram");
    PrevName = Name;
    HistogramSnapshot H;
    H.Sum = Sum;
    H.Buckets.resize(NumBuckets);
    for (size_t B = 0; B != NumBuckets; ++B) {
      if (std::fscanf(F, "%" SCNu64, &H.Buckets[B]) != 1)
        return Corrupt("malformed metrics histogram");
      H.Count += H.Buckets[B]; // Count is derived, not stored.
    }
    R.Metrics.Histograms[Name] = std::move(H);
  }
  {
    char End[8] = {0};
    if (std::fscanf(F, "%7s", End) != 1 || std::string(End) != "end")
      return Corrupt("missing end marker");
  }

  // Reject trailing junk: a corrupted byte in the final field's digits
  // would otherwise load as a silently shortened value (fscanf stops at
  // the first non-digit and nothing ever reads the remainder).
  int C;
  while ((C = std::fgetc(F)) != EOF && std::isspace(C))
    ;
  if (C != EOF)
    return Corrupt("truncated or malformed fields");
  if (!In.ok())
    return Corrupt("truncated or malformed fields");
  return R;
}

} // namespace

Expected<SimulationResult> dynace::parseResultText(const std::string &Text) {
  FILE *F = ::fmemopen(const_cast<char *>(Text.data()),
                       Text.size(), "r");
  if (!F)
    return Status::error(ErrorCode::IoError, "fmemopen failed");
  Expected<SimulationResult> R = parseResultStream(F);
  std::fclose(F);
  return R;
}

Expected<SimulationResult> dynace::loadResultChecked(const std::string &Path) {
  if (FaultInjector::instance().shouldFail(FaultSite::CacheRead))
    return FaultInjector::makeError(FaultSite::CacheRead);

  FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "no cache entry '" + Path +
                             "': " + std::strerror(errno));
  Expected<SimulationResult> R = parseResultStream(F);
  std::fclose(F);
  if (R.ok())
    return R;
  if (R.status().code() == ErrorCode::IoError)
    // Stale version: a plain miss, left in place for the matching binary.
    return Status::error(ErrorCode::IoError,
                         "stale cache entry '" + Path + "' (" +
                             R.status().message() + ")");
  return quarantineCorruptEntry(Path, R.status().message().c_str());
}

bool dynace::loadResult(const std::string &Path, SimulationResult &R) {
  Expected<SimulationResult> E = loadResultChecked(Path);
  if (!E)
    return false;
  R = E.take();
  return true;
}

std::string dynace::resultCacheKey(const std::string &BenchmarkName,
                                   const SimulationOptions &Opts) {
  std::ostringstream Key;
  Key << kResultCacheVersion << '|' << BenchmarkName << '|'
      << schemeName(Opts.SchemeKind) << '|'
      << Opts.MaxInstructions << '|' << Opts.L1DReconfigInterval << '|'
      << Opts.L2ReconfigInterval << '|' << Opts.Do.HotThreshold << '|'
      << Opts.Do.HotSampleInstructions << '|' << Opts.Do.SizeEmaAlpha << '|'
      << Opts.Ace.MinHotspotSize << '|' << Opts.Ace.PerformanceThreshold
      << '|' << Opts.Ace.RetuneThreshold << '|' << Opts.Ace.SampleEveryN
      << '|' << Opts.Ace.DecouplingEnabled << '|' << Opts.Ace.GuardEnabled
      << '|' << Opts.Ace.WarmupInvocations << '|'
      << Opts.Ace.MeasureInvocations << '|' << Opts.Ace.PairedReference
      << '|' << Opts.Ace.EpiMargin << '|' << Opts.Ace.MaxRetunes << '|'
      << Opts.Bbv.IntervalInstructions << '|' << Opts.Bbv.DistanceThreshold
      << '|' << Opts.Bbv.PerformanceThreshold << '|'
      << Opts.Bbv.StableRunThreshold << '|' << Opts.Bbv.GuardEnabled << '|'
      << Opts.Bbv.CalibrateReference << '|' << Opts.Bbv.EpiMargin << '|'
      << Opts.Core.WindowSize << '|' << Opts.Core.LsqSize << '|'
      << Opts.Hierarchy.L1DSettings.size() << '|'
      << Opts.Hierarchy.L1DSettings.front().SizeBytes << '|'
      << Opts.Hierarchy.L2Settings.front().SizeBytes << '|'
      << Opts.Hierarchy.MemoryLatency << '|'
      << Opts.Hierarchy.RetainOnDownsize << '|' << Opts.Energy.MemoryAccess
      << '|' << Opts.Energy.DynamicExponent << '|' << Opts.DoSystemAlwaysOn
      << '|' << Opts.EnableWindowCu << '|'
      << Opts.WindowCuReconfigInterval;
  size_t Hash = std::hash<std::string>{}(Key.str());
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%s-%s-%016zx", BenchmarkName.c_str(),
                schemeName(Opts.SchemeKind), Hash);
  return Buf;
}

namespace {

// Per-key mutex registry for lockResultKey. The map is GUARDED_BY the
// registry mutex (checked under -Wthread-safety); the per-key mutexes stay
// plain std::mutex because the public API hands out
// std::unique_lock<std::mutex>. Leaked pointer: pipeline workers may hold
// key locks across static destruction.
Mutex KeyRegistryMutex;
std::map<std::string, std::unique_ptr<std::mutex>> *KeyRegistry
    GUARDED_BY(KeyRegistryMutex) = nullptr;

} // namespace

std::unique_lock<std::mutex> dynace::lockResultKey(const std::string &Key) {
  std::mutex *KeyMutex;
  {
    MutexLock Guard(KeyRegistryMutex);
    if (!KeyRegistry)
      KeyRegistry = new std::map<std::string, std::unique_ptr<std::mutex>>();
    std::unique_ptr<std::mutex> &Slot = (*KeyRegistry)[Key];
    if (!Slot)
      Slot = std::make_unique<std::mutex>();
    KeyMutex = Slot.get(); // Stable: entries are never erased.
  }
  return std::unique_lock<std::mutex>(*KeyMutex);
}
