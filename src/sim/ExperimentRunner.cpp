//===- sim/ExperimentRunner.cpp -------------------------------------------==//

#include "sim/ExperimentRunner.h"

#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "sim/ResultCache.h"
#include "support/Env.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <tuple>
#include <sys/stat.h>

using namespace dynace;

std::string CellOutcome::label() const {
  if (!Failed)
    return "ok";
  return std::string("FAILED(") + errorCodeName(Code) + ")";
}

/// Cache directory from DYNACE_CACHE_DIR; empty = on-disk caching disabled.
static std::string cacheDir() { return envString("DYNACE_CACHE_DIR"); }

static double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

ExperimentRunner::ExperimentRunner(SimulationOptions Base)
    : Base(std::move(Base)) {}

SimulationOptions ExperimentRunner::defaultOptions() {
  SimulationOptions Opts;
  // Strictly validated: garbage in DYNACE_INSTR_BUDGET is fatal instead of
  // silently simulating with a misread cap (0 = unset = run to completion).
  Opts.MaxInstructions = envUnsignedOr("DYNACE_INSTR_BUDGET", 0);
  return Opts;
}

const GeneratedWorkload &
dynace::cachedWorkload(const WorkloadProfile &Profile) {
  // Map nodes are stable, so the returned reference survives later
  // insertions by other workers. Leaked pointer: serve workers may hold
  // references across static destruction (they _exit()).
  static std::mutex *WorkloadsMutex = new std::mutex();
  static std::map<std::string, GeneratedWorkload> *Workloads =
      new std::map<std::string, GeneratedWorkload>();
  std::lock_guard<std::mutex> Lock(*WorkloadsMutex);
  auto It = Workloads->find(Profile.Name);
  if (It == Workloads->end()) {
    DYNACE_PROFILE_SCOPE("generate");
    DYNACE_TRACE_SCOPE("runner", "generate",
                       obs::traceArg("workload", Profile.Name));
    It = Workloads
             ->emplace(Profile.Name, WorkloadGenerator::generate(Profile))
             .first;
  }
  return It->second;
}

void ExperimentRunner::recordStats(const WorkloadProfile &Profile, Scheme S,
                                   const SimulationResult &R, bool CacheHit,
                                   double WallSeconds,
                                   const CellOutcome &Outcome,
                                   uint64_t Quarantined) {
  if (Outcome.Failed)
    std::fprintf(stderr,
                 "[dynace] %s/%s: FAILED after %u attempt(s): %s (%.2fs)\n",
                 Profile.Name.c_str(), schemeName(S), Outcome.Attempts,
                 Outcome.Reason.c_str(), WallSeconds);
  else
    std::fprintf(stderr, "[dynace] %s/%s: %s, %.1fM instr, %.2fs\n",
                 Profile.Name.c_str(), schemeName(S),
                 CacheHit ? "cached" : "simulated",
                 static_cast<double>(R.Instructions) / 1e6, WallSeconds);
  // Pipeline accounting lands in the process registry: per-cell wall time
  // depends on scheduling and disk state, so it is reported, never cached.
  MetricsRegistry::process().histogram("runner.cell_ms").record(
      static_cast<uint64_t>(WallSeconds * 1000.0));
  std::lock_guard<std::mutex> Lock(StatsMutex);
  Stats.push_back({Profile.Name, S, R.Instructions, CacheHit, WallSeconds,
                   Outcome.Failed, Outcome.Code, Outcome.Reason,
                   Outcome.Attempts, Quarantined});
}

std::vector<RunStats> ExperimentRunner::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

std::pair<SimulationResult, CellOutcome>
dynace::runExperimentCell(const WorkloadProfile &Profile, Scheme S,
                          const SimulationOptions &Base) {
  SimulationOptions Opts = Base;
  Opts.SchemeKind = S;
  // The watchdog is an execution-policy knob, not a result input: read it
  // from the environment here and keep it out of resultCacheKey().
  if (Opts.TimeoutMs == 0)
    Opts.TimeoutMs = envUnsignedOr("DYNACE_RUN_TIMEOUT_MS", 0);
  DYNACE_TRACE_SCOPE("runner", "cell",
                     obs::traceArg("cell", Profile.Name + "/" +
                                               schemeName(S)));

  // Hold the key's in-process lock across probe + simulate + publish: of
  // two workers racing on one key, the loser blocks here and then loads
  // the winner's entry instead of simulating it again.
  std::string Key = resultCacheKey(Profile.Name, Opts);
  std::unique_lock<std::mutex> KeyLock = lockResultKey(Key);

  CellOutcome Outcome;
  std::string Dir = cacheDir();
  std::string Path;
  if (!Dir.empty()) {
    ::mkdir(Dir.c_str(), 0755);
    Path = Dir + "/" + Key + ".txt";
    DYNACE_PROFILE_SCOPE("cache");
    Expected<SimulationResult> Cached = loadResultChecked(Path);
    if (Cached.ok()) {
      SimulationResult R = Cached.take();
      DYNACE_TRACE_INSTANT("cache", "hit", obs::traceArg("key", Key));
      MetricsRegistry::process().counter("cache.hits").inc();
      Outcome.CacheHit = true;
      return {std::move(R), Outcome};
    }
    DYNACE_TRACE_INSTANT("cache", "miss", obs::traceArg("key", Key));
    MetricsRegistry::process().counter("cache.misses").inc();
    // Every load failure degrades to a cache miss (re-simulate). A plain
    // miss — no entry, or an entry of another format version — is silent;
    // corruption and injected faults are worth a line.
    if (Cached.status().code() != ErrorCode::IoError)
      std::fprintf(stderr, "[dynace] cache: %s\n",
                   Cached.status().toString().c_str());
    if (Cached.status().code() == ErrorCode::InvalidInput) {
      Outcome.Quarantined = 1; // loadResultChecked() quarantined the entry.
      DYNACE_TRACE_INSTANT("cache", "quarantine", obs::traceArg("key", Key));
      MetricsRegistry::process().counter("cache.quarantined").inc();
    }
  }

  const GeneratedWorkload &W = cachedWorkload(Profile);
  // Total attempts = 1 + DYNACE_MAX_RETRIES. Retrying helps transient
  // faults (injected ones, watchdog near-misses); deterministic failures
  // burn the budget and surface as a FAILED cell.
  const uint64_t MaxRetries = envUnsignedOr("DYNACE_MAX_RETRIES", 2, 0, 16);
  FaultInjector &FI = FaultInjector::instance();
  SimulationResult R;
  for (uint64_t Attempt = 0;; ++Attempt) {
    Outcome.Attempts = static_cast<unsigned>(Attempt) + 1;
    // Per-attempt watchdog budget: the deadline is measured from THIS
    // attempt's start, never from the cell's. Earlier attempts, their
    // backoff, and injected stalls do not shrink a later attempt's budget.
    auto AttemptStart = std::chrono::steady_clock::now();
    Status Err;
    if (FI.shouldFail(FaultSite::RunnerWorker)) {
      Err = FaultInjector::makeError(FaultSite::RunnerWorker);
    } else {
      if (FI.shouldFail(FaultSite::WorkerStall)) {
        // A deterministic straggler: this attempt sleeps before touching
        // the simulator, exercising serve lease expiry and the
        // per-attempt watchdog below.
        uint64_t StallMs = envUnsignedOr("DYNACE_STALL_MS", 100, 0, 600000);
        DYNACE_TRACE_INSTANT("runner", "stall",
                             obs::traceArg("stall_ms", StallMs));
        MetricsRegistry::process().counter("runner.stalls").inc();
        std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
      }
      uint64_t AttemptElapsedMs = static_cast<uint64_t>(
          secondsSince(AttemptStart) * 1000.0);
      if (Opts.TimeoutMs != 0 && AttemptElapsedMs >= Opts.TimeoutMs) {
        // The attempt overran its own budget before simulating (stalled
        // worker); the NEXT attempt starts with a fresh budget.
        Err = Status::error(
            ErrorCode::Timeout,
            "attempt spent " + std::to_string(AttemptElapsedMs) +
                " ms of its " + std::to_string(Opts.TimeoutMs) +
                " ms per-attempt budget before simulating");
      } else {
        System Sys(W.Prog, Opts);
        Expected<SimulationResult> E = Sys.runChecked();
        if (E)
          R = E.take();
        else
          Err = E.status();
      }
    }
    if (Err.ok())
      break;
    if (Attempt == MaxRetries) {
      Outcome.Failed = true;
      Outcome.Code = Err.code();
      Outcome.Reason = Err.message();
      R = SimulationResult();
      R.SchemeKind = S;
      DYNACE_TRACE_INSTANT("runner", "cell.failed",
                           obs::traceArg("reason", Err.message()));
      MetricsRegistry::process().counter("runner.failures").inc();
      break;
    }
    // Capped exponential backoff before the next attempt. Purely pacing
    // for transient faults; results never depend on the delay.
    uint64_t DelayMs =
        std::min<uint64_t>(1ull << std::min<uint64_t>(Attempt, 6), 64);
    DYNACE_TRACE_INSTANT("runner", "retry",
                         obs::traceArg("attempt", Attempt + 1) + ", " +
                             obs::traceArg("backoff_ms", DelayMs));
    MetricsRegistry::process().counter("runner.retries").inc();
    std::fprintf(stderr,
                 "[dynace] %s/%s: attempt %llu failed (%s); retrying in "
                 "%llu ms\n",
                 Profile.Name.c_str(), schemeName(S),
                 static_cast<unsigned long long>(Attempt + 1),
                 Err.toString().c_str(),
                 static_cast<unsigned long long>(DelayMs));
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
  }

  if (!Outcome.Failed && !Path.empty()) {
    DYNACE_PROFILE_SCOPE("cache");
    DYNACE_TRACE_INSTANT("cache", "save", obs::traceArg("key", Key));
    if (Status SaveErr = saveResultChecked(Path, R); !SaveErr)
      // Publishing is an optimization; a failed save is not a cell
      // failure — the next consumer just re-simulates.
      std::fprintf(stderr, "[dynace] cache: %s\n",
                   SaveErr.toString().c_str());
  }
  return {std::move(R), Outcome};
}

std::pair<SimulationResult, CellOutcome>
ExperimentRunner::runSchemeChecked(const WorkloadProfile &Profile, Scheme S) {
  auto Start = std::chrono::steady_clock::now();
  std::pair<SimulationResult, CellOutcome> Cell =
      runExperimentCell(Profile, S, Base);
  recordStats(Profile, S, Cell.first, Cell.second.CacheHit,
              secondsSince(Start), Cell.second, Cell.second.Quarantined);
  return Cell;
}

SimulationResult ExperimentRunner::runScheme(const WorkloadProfile &Profile,
                                             Scheme S) {
  std::pair<SimulationResult, CellOutcome> P = runSchemeChecked(Profile, S);
  return std::move(P.first);
}

const BenchmarkRun &ExperimentRunner::run(const WorkloadProfile &Profile) {
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Profile.Name);
    if (It != Cache.end())
      return It->second;
  }

  BenchmarkRun Run;
  Run.Name = Profile.Name;
  std::tie(Run.Baseline, Run.BaselineOutcome) =
      runSchemeChecked(Profile, Scheme::Baseline);
  std::tie(Run.Bbv, Run.BbvOutcome) = runSchemeChecked(Profile, Scheme::Bbv);
  std::tie(Run.Hotspot, Run.HotspotOutcome) =
      runSchemeChecked(Profile, Scheme::Hotspot);

  // emplace keeps the first triple if another thread raced us here; both
  // triples are identical anyway (deterministic simulation).
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Cache.emplace(Profile.Name, std::move(Run)).first->second;
}

std::vector<BenchmarkRun>
ExperimentRunner::runAll(const std::vector<WorkloadProfile> &Profiles,
                         unsigned Jobs) {
  if (Jobs == 0)
    Jobs = ThreadPool::defaultThreadCount();

  // Generate all workloads up front so every worker starts from the same
  // immutable programs instead of serializing on the generation lock.
  for (const WorkloadProfile &P : Profiles)
    cachedWorkload(P);

  constexpr Scheme Schemes[] = {Scheme::Baseline, Scheme::Bbv,
                                Scheme::Hotspot};
  std::vector<BenchmarkRun> Out(Profiles.size());
  // One future per pending (profile, scheme) cell; memoized profiles have
  // no futures and are answered from the in-memory cache.
  using Cell = std::pair<SimulationResult, CellOutcome>;
  std::vector<std::future<Cell>> Futures(Profiles.size() * 3);
  std::vector<bool> Pending(Profiles.size(), false);

  {
    ThreadPool Pool(Jobs);
    for (size_t I = 0; I != Profiles.size(); ++I) {
      const WorkloadProfile &P = Profiles[I];
      {
        std::lock_guard<std::mutex> Lock(CacheMutex);
        auto It = Cache.find(P.Name);
        if (It != Cache.end()) {
          Out[I] = It->second;
          continue;
        }
      }
      Pending[I] = true;
      for (size_t SI = 0; SI != 3; ++SI)
        Futures[I * 3 + SI] = Pool.submit(
            [this, &P, S = Schemes[SI]] { return runSchemeChecked(P, S); });
    }

    // Collect in input order — the grid's result order is deterministic no
    // matter which worker finished first. Failed cells arrive as FAILED
    // outcomes, never as exceptions, so one bad cell cannot sink the grid.
    for (size_t I = 0; I != Profiles.size(); ++I) {
      if (!Pending[I])
        continue;
      Out[I].Name = Profiles[I].Name;
      std::tie(Out[I].Baseline, Out[I].BaselineOutcome) =
          Futures[I * 3 + 0].get();
      std::tie(Out[I].Bbv, Out[I].BbvOutcome) = Futures[I * 3 + 1].get();
      std::tie(Out[I].Hotspot, Out[I].HotspotOutcome) =
          Futures[I * 3 + 2].get();
      std::lock_guard<std::mutex> Lock(CacheMutex);
      Cache.emplace(Profiles[I].Name, Out[I]);
    }
  }
  return Out;
}

std::vector<SimulationResult>
ExperimentRunner::runAllScheme(const std::vector<WorkloadProfile> &Profiles,
                               Scheme S, unsigned Jobs) {
  if (Jobs == 0)
    Jobs = ThreadPool::defaultThreadCount();
  for (const WorkloadProfile &P : Profiles)
    cachedWorkload(P);

  std::vector<std::future<SimulationResult>> Futures;
  Futures.reserve(Profiles.size());
  ThreadPool Pool(Jobs);
  for (const WorkloadProfile &P : Profiles)
    Futures.push_back(Pool.submit([this, &P, S] { return runScheme(P, S); }));

  std::vector<SimulationResult> Out;
  Out.reserve(Profiles.size());
  for (std::future<SimulationResult> &F : Futures)
    Out.push_back(F.get());
  return Out;
}
