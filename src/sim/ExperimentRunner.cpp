//===- sim/ExperimentRunner.cpp -------------------------------------------==//

#include "sim/ExperimentRunner.h"

#include "sim/ResultCache.h"
#include "support/Env.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <sys/stat.h>

using namespace dynace;

/// Cache directory from DYNACE_CACHE_DIR; empty = on-disk caching disabled.
static std::string cacheDir() {
  const char *Dir = std::getenv("DYNACE_CACHE_DIR");
  return Dir ? Dir : "";
}

static double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

ExperimentRunner::ExperimentRunner(SimulationOptions Base)
    : Base(std::move(Base)) {}

SimulationOptions ExperimentRunner::defaultOptions() {
  SimulationOptions Opts;
  // Strictly validated: garbage in DYNACE_INSTR_BUDGET is fatal instead of
  // silently simulating with a misread cap (0 = unset = run to completion).
  Opts.MaxInstructions = envUnsignedOr("DYNACE_INSTR_BUDGET", 0);
  return Opts;
}

const GeneratedWorkload &
ExperimentRunner::workload(const WorkloadProfile &Profile) {
  // Map nodes are stable, so the returned reference survives later
  // insertions by other workers.
  std::lock_guard<std::mutex> Lock(WorkloadsMutex);
  auto It = Workloads.find(Profile.Name);
  if (It == Workloads.end())
    It = Workloads
             .emplace(Profile.Name, WorkloadGenerator::generate(Profile))
             .first;
  return It->second;
}

void ExperimentRunner::recordStats(const WorkloadProfile &Profile, Scheme S,
                                   const SimulationResult &R, bool CacheHit,
                                   double WallSeconds) {
  std::fprintf(stderr, "[dynace] %s/%s: %s, %.1fM instr, %.2fs\n",
               Profile.Name.c_str(), schemeName(S),
               CacheHit ? "cached" : "simulated",
               static_cast<double>(R.Instructions) / 1e6, WallSeconds);
  std::lock_guard<std::mutex> Lock(StatsMutex);
  Stats.push_back({Profile.Name, S, R.Instructions, CacheHit, WallSeconds});
}

std::vector<RunStats> ExperimentRunner::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}

SimulationResult ExperimentRunner::runScheme(const WorkloadProfile &Profile,
                                             Scheme S) {
  SimulationOptions Opts = Base;
  Opts.SchemeKind = S;
  auto Start = std::chrono::steady_clock::now();

  // Hold the key's in-process lock across probe + simulate + publish: of
  // two workers racing on one key, the loser blocks here and then loads
  // the winner's entry instead of simulating it again.
  std::string Key = resultCacheKey(Profile.Name, Opts);
  std::unique_lock<std::mutex> KeyLock = lockResultKey(Key);

  std::string Dir = cacheDir();
  std::string Path;
  if (!Dir.empty()) {
    ::mkdir(Dir.c_str(), 0755);
    Path = Dir + "/" + Key + ".txt";
    SimulationResult Cached;
    if (loadResult(Path, Cached)) {
      recordStats(Profile, S, Cached, /*CacheHit=*/true,
                  secondsSince(Start));
      return Cached;
    }
  }

  const GeneratedWorkload &W = workload(Profile);
  System Sys(W.Prog, Opts);
  SimulationResult R = Sys.run();
  if (!Path.empty())
    saveResult(Path, R);
  recordStats(Profile, S, R, /*CacheHit=*/false, secondsSince(Start));
  return R;
}

const BenchmarkRun &ExperimentRunner::run(const WorkloadProfile &Profile) {
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Profile.Name);
    if (It != Cache.end())
      return It->second;
  }

  BenchmarkRun Run;
  Run.Name = Profile.Name;
  Run.Baseline = runScheme(Profile, Scheme::Baseline);
  Run.Bbv = runScheme(Profile, Scheme::Bbv);
  Run.Hotspot = runScheme(Profile, Scheme::Hotspot);

  // emplace keeps the first triple if another thread raced us here; both
  // triples are identical anyway (deterministic simulation).
  std::lock_guard<std::mutex> Lock(CacheMutex);
  return Cache.emplace(Profile.Name, std::move(Run)).first->second;
}

std::vector<BenchmarkRun>
ExperimentRunner::runAll(const std::vector<WorkloadProfile> &Profiles,
                         unsigned Jobs) {
  if (Jobs == 0)
    Jobs = ThreadPool::defaultThreadCount();

  // Generate all workloads up front so every worker starts from the same
  // immutable programs instead of serializing on the generation lock.
  for (const WorkloadProfile &P : Profiles)
    workload(P);

  constexpr Scheme Schemes[] = {Scheme::Baseline, Scheme::Bbv,
                                Scheme::Hotspot};
  std::vector<BenchmarkRun> Out(Profiles.size());
  // One future per pending (profile, scheme) cell; memoized profiles have
  // no futures and are answered from the in-memory cache.
  std::vector<std::future<SimulationResult>> Futures(Profiles.size() * 3);
  std::vector<bool> Pending(Profiles.size(), false);

  {
    ThreadPool Pool(Jobs);
    for (size_t I = 0; I != Profiles.size(); ++I) {
      const WorkloadProfile &P = Profiles[I];
      {
        std::lock_guard<std::mutex> Lock(CacheMutex);
        auto It = Cache.find(P.Name);
        if (It != Cache.end()) {
          Out[I] = It->second;
          continue;
        }
      }
      Pending[I] = true;
      for (size_t SI = 0; SI != 3; ++SI)
        Futures[I * 3 + SI] = Pool.submit(
            [this, &P, S = Schemes[SI]] { return runScheme(P, S); });
    }

    // Collect in input order — the grid's result order is deterministic no
    // matter which worker finished first.
    for (size_t I = 0; I != Profiles.size(); ++I) {
      if (!Pending[I])
        continue;
      Out[I].Name = Profiles[I].Name;
      Out[I].Baseline = Futures[I * 3 + 0].get();
      Out[I].Bbv = Futures[I * 3 + 1].get();
      Out[I].Hotspot = Futures[I * 3 + 2].get();
      std::lock_guard<std::mutex> Lock(CacheMutex);
      Cache.emplace(Profiles[I].Name, Out[I]);
    }
  }
  return Out;
}

std::vector<SimulationResult>
ExperimentRunner::runAllScheme(const std::vector<WorkloadProfile> &Profiles,
                               Scheme S, unsigned Jobs) {
  if (Jobs == 0)
    Jobs = ThreadPool::defaultThreadCount();
  for (const WorkloadProfile &P : Profiles)
    workload(P);

  std::vector<std::future<SimulationResult>> Futures;
  Futures.reserve(Profiles.size());
  ThreadPool Pool(Jobs);
  for (const WorkloadProfile &P : Profiles)
    Futures.push_back(Pool.submit([this, &P, S] { return runScheme(P, S); }));

  std::vector<SimulationResult> Out;
  Out.reserve(Profiles.size());
  for (std::future<SimulationResult> &F : Futures)
    Out.push_back(F.get());
  return Out;
}
