//===- sim/ExperimentRunner.cpp -------------------------------------------==//

#include "sim/ExperimentRunner.h"

#include "sim/ResultCache.h"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

using namespace dynace;

/// Cache directory from DYNACE_CACHE_DIR; empty = caching disabled.
static std::string cacheDir() {
  const char *Dir = std::getenv("DYNACE_CACHE_DIR");
  return Dir ? Dir : "";
}

ExperimentRunner::ExperimentRunner(SimulationOptions Base)
    : Base(std::move(Base)) {}

SimulationOptions ExperimentRunner::defaultOptions() {
  SimulationOptions Opts;
  if (const char *Budget = std::getenv("DYNACE_INSTR_BUDGET"))
    Opts.MaxInstructions = std::strtoull(Budget, nullptr, 10);
  return Opts;
}

const GeneratedWorkload &
ExperimentRunner::workload(const WorkloadProfile &Profile) {
  auto It = Workloads.find(Profile.Name);
  if (It == Workloads.end())
    It = Workloads
             .emplace(Profile.Name, WorkloadGenerator::generate(Profile))
             .first;
  return It->second;
}

SimulationResult ExperimentRunner::runScheme(const WorkloadProfile &Profile,
                                             Scheme S) {
  SimulationOptions Opts = Base;
  Opts.SchemeKind = S;

  std::string Dir = cacheDir();
  std::string Path;
  if (!Dir.empty()) {
    ::mkdir(Dir.c_str(), 0755);
    Path = Dir + "/" + resultCacheKey(Profile.Name, Opts) + ".txt";
    SimulationResult Cached;
    if (loadResult(Path, Cached)) {
      std::fprintf(stderr, "[dynace] %s/%s: cached\n", Profile.Name.c_str(),
                   schemeName(S));
      return Cached;
    }
  }

  const GeneratedWorkload &W = workload(Profile);
  System Sys(W.Prog, Opts);
  SimulationResult R = Sys.run();
  if (!Path.empty())
    saveResult(Path, R);
  return R;
}

const BenchmarkRun &ExperimentRunner::run(const WorkloadProfile &Profile) {
  auto It = Cache.find(Profile.Name);
  if (It != Cache.end())
    return It->second;

  BenchmarkRun Run;
  Run.Name = Profile.Name;
  std::fprintf(stderr, "[dynace] %s: baseline\n", Profile.Name.c_str());
  Run.Baseline = runScheme(Profile, Scheme::Baseline);
  std::fprintf(stderr, "[dynace] %s: bbv\n", Profile.Name.c_str());
  Run.Bbv = runScheme(Profile, Scheme::Bbv);
  std::fprintf(stderr, "[dynace] %s: hotspot\n", Profile.Name.c_str());
  Run.Hotspot = runScheme(Profile, Scheme::Hotspot);
  return Cache.emplace(Profile.Name, std::move(Run)).first->second;
}
