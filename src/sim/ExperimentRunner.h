//===- sim/ExperimentRunner.h - Paper experiment driver ---------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs each benchmark under the baseline, BBV and hotspot schemes on the
/// same generated program, caching results so several tables can be printed
/// from one set of simulations. All paper tables and figures are derived
/// from the `BenchmarkRun` triples this produces.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_EXPERIMENTRUNNER_H
#define DYNACE_SIM_EXPERIMENTRUNNER_H

#include "sim/System.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <map>
#include <string>

namespace dynace {

/// Results of one benchmark under all three schemes.
struct BenchmarkRun {
  std::string Name;
  SimulationResult Baseline;
  SimulationResult Bbv;
  SimulationResult Hotspot;

  /// Energy reduction of \p SchemeEnergy relative to the baseline run.
  static double reduction(double SchemeEnergy, double BaselineEnergy) {
    if (BaselineEnergy <= 0.0)
      return 0.0;
    return 1.0 - SchemeEnergy / BaselineEnergy;
  }

  /// Performance degradation (cycles) of a scheme vs the baseline run.
  static double slowdown(uint64_t SchemeCycles, uint64_t BaselineCycles) {
    if (BaselineCycles == 0)
      return 0.0;
    return static_cast<double>(SchemeCycles) /
               static_cast<double>(BaselineCycles) -
           1.0;
  }
};

/// Caches per-benchmark simulation triples.
class ExperimentRunner {
public:
  /// \param Base options shared by all runs; the scheme field is overridden
  ///        per run.
  explicit ExperimentRunner(SimulationOptions Base = SimulationOptions());

  /// Runs (or returns the cached run of) \p Profile under all schemes.
  const BenchmarkRun &run(const WorkloadProfile &Profile);

  /// Runs one scheme only (used by ablation benches).
  SimulationResult runScheme(const WorkloadProfile &Profile, Scheme S);

  /// Default options honoring the DYNACE_INSTR_BUDGET environment variable
  /// (a per-benchmark instruction cap; 0/unset = run programs to
  /// completion).
  static SimulationOptions defaultOptions();

  const SimulationOptions &baseOptions() const { return Base; }

private:
  const GeneratedWorkload &workload(const WorkloadProfile &Profile);

  SimulationOptions Base;
  std::map<std::string, GeneratedWorkload> Workloads;
  std::map<std::string, BenchmarkRun> Cache;
};

} // namespace dynace

#endif // DYNACE_SIM_EXPERIMENTRUNNER_H
