//===- sim/ExperimentRunner.h - Paper experiment driver ---------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs each benchmark under the baseline, BBV and hotspot schemes on the
/// same generated program, caching results so several tables can be printed
/// from one set of simulations. All paper tables and figures are derived
/// from the `BenchmarkRun` triples this produces.
///
/// Two execution paths share one cache and produce identical results:
///
///  * run() / runScheme() — serial, one (benchmark, scheme) at a time;
///  * runAll() / runAllScheme() — the parallel pipeline: the whole
///    (benchmark × scheme) grid is fanned out across a ThreadPool of
///    DYNACE_JOBS workers (default: hardware concurrency) and collected in
///    deterministic input order. Every worker builds its own System from
///    the shared immutable Program, and the simulator holds no mutable
///    global state, so parallel results are bit-identical to serial ones.
///
/// Each completed (benchmark, scheme) run is recorded as a RunStats entry
/// (instructions, on-disk cache hit/miss, wall time) retrievable via
/// stats() and printable via printRunStats() — the pipeline's speedup is
/// measured, not asserted.
///
/// Fault tolerance (DESIGN.md §8): each cell runs under a retry loop with
/// capped exponential backoff (DYNACE_MAX_RETRIES, default 2 retries). A
/// cell whose attempts are exhausted does NOT abort the grid — it yields
/// an empty result with a CellOutcome describing the final error, and the
/// report printers render it as FAILED(<code>). Cache read errors degrade
/// to misses (corrupt entries are quarantined), cache write errors are
/// logged and dropped (publishing is an optimization), and each attempt is
/// bounded by the DYNACE_RUN_TIMEOUT_MS wall-clock watchdog. Because
/// simulations are deterministic, a run whose injected faults all resolved
/// within the retry budget is bit-identical to an undisturbed run.
///
/// **Watchdog semantics — per attempt, never cumulative.** Every attempt
/// gets a fresh DYNACE_RUN_TIMEOUT_MS budget measured from its own start:
/// wall clock burnt by earlier failed attempts, retry backoff, or an
/// injected `worker.stall` delay never counts against a later attempt. A
/// stalled attempt that overruns its own budget before the simulator even
/// starts fails with ErrorCode::Timeout and is retried like any other
/// transient failure (pinned by the PerAttemptTimeoutBudget regression
/// test).
///
/// Cell execution is a free function — runExperimentCell() — so the
/// distributed experiment service (src/serve/) can run cells in worker
/// processes without constructing a runner; ExperimentRunner's methods
/// delegate to it and add only in-memory memoization and accounting.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_EXPERIMENTRUNNER_H
#define DYNACE_SIM_EXPERIMENTRUNNER_H

#include "sim/System.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dynace {

/// Terminal outcome of one (benchmark, scheme) cell after the retry loop.
struct CellOutcome {
  bool Failed = false; ///< True when every attempt failed.
  /// Error taxonomy of the final attempt (valid when Failed).
  ErrorCode Code = ErrorCode::InvalidInput;
  std::string Reason;    ///< Final attempt's error message (when Failed).
  unsigned Attempts = 1; ///< Simulation attempts consumed (1 = no retry).
  bool CacheHit = false; ///< Served from the on-disk result cache.
  /// Corrupt cache entries quarantined while probing this cell.
  uint64_t Quarantined = 0;

  /// \returns "ok", or "FAILED(<code>)" for report cells.
  std::string label() const;
};

/// Results of one benchmark under all three schemes.
struct BenchmarkRun {
  std::string Name;
  SimulationResult Baseline;
  SimulationResult Bbv;
  SimulationResult Hotspot;
  /// Outcome of each scheme's cell. A failed scheme leaves its
  /// SimulationResult empty; report printers must check complete() (or the
  /// per-scheme outcome) before dereferencing optional sub-reports.
  CellOutcome BaselineOutcome;
  CellOutcome BbvOutcome;
  CellOutcome HotspotOutcome;

  /// \returns the outcome of scheme \p S.
  const CellOutcome &outcome(Scheme S) const {
    return S == Scheme::Baseline ? BaselineOutcome
           : S == Scheme::Bbv    ? BbvOutcome
                                 : HotspotOutcome;
  }

  /// \returns true when all three schemes produced a result.
  bool complete() const {
    return !BaselineOutcome.Failed && !BbvOutcome.Failed &&
           !HotspotOutcome.Failed;
  }

  /// \returns the first failed scheme's "FAILED(<code>)" label, or "ok".
  std::string failureLabel() const {
    if (BaselineOutcome.Failed)
      return BaselineOutcome.label();
    if (BbvOutcome.Failed)
      return BbvOutcome.label();
    return HotspotOutcome.label();
  }

  /// Energy reduction of \p SchemeEnergy relative to the baseline run.
  ///
  /// A scheme that spends *more* energy than the baseline yields a
  /// negative reduction; the value is clamped to [-1, 1] so a pathological
  /// regression reads as "-100%" instead of an unbounded negative percent.
  /// Pass \p Regressed to detect that case explicitly rather than
  /// inferring it from the sign of a clamped value.
  ///
  /// \param SchemeEnergy energy consumed under the evaluated scheme.
  /// \param BaselineEnergy energy consumed under the baseline run.
  /// \param Regressed if non-null, set to true iff the scheme consumed
  ///        strictly more energy than a positive baseline.
  /// \returns 1 - SchemeEnergy / BaselineEnergy clamped to [-1, 1], or 0
  ///          when the baseline is non-positive (no meaningful ratio).
  static double reduction(double SchemeEnergy, double BaselineEnergy,
                          bool *Regressed = nullptr) {
    if (Regressed)
      *Regressed = BaselineEnergy > 0.0 && SchemeEnergy > BaselineEnergy;
    if (BaselineEnergy <= 0.0)
      return 0.0;
    double R = 1.0 - SchemeEnergy / BaselineEnergy;
    if (R < -1.0)
      return -1.0;
    if (R > 1.0)
      return 1.0;
    return R;
  }

  /// Performance degradation (cycles) of a scheme vs the baseline run.
  /// \returns SchemeCycles / BaselineCycles - 1, or 0 when the baseline
  ///          cycle count is 0.
  static double slowdown(uint64_t SchemeCycles, uint64_t BaselineCycles) {
    if (BaselineCycles == 0)
      return 0.0;
    return static_cast<double>(SchemeCycles) /
               static_cast<double>(BaselineCycles) -
           1.0;
  }
};

/// Runs one (benchmark, scheme) cell to its terminal outcome: probe the
/// on-disk result cache (under the key's in-process lock), simulate under
/// the per-attempt retry/backoff/watchdog policy, publish the fresh result
/// back to the cache. Never aborts: when every attempt fails the outcome
/// carries the final error and the result is empty (scheme field only).
///
/// This is the execution core shared by ExperimentRunner (in-process
/// grids) and the serve worker processes (src/serve/Worker.h): generated
/// workloads are memoized process-wide, so repeated cells of one benchmark
/// generate its program once per process.
///
/// \param Profile the benchmark to run.
/// \param S the management scheme to evaluate.
/// \param Base options shared by all runs; SchemeKind is overridden with
///        \p S, and TimeoutMs (when 0) is read from DYNACE_RUN_TIMEOUT_MS.
/// \returns the result and its cell outcome.
std::pair<SimulationResult, CellOutcome>
runExperimentCell(const WorkloadProfile &Profile, Scheme S,
                  const SimulationOptions &Base);

/// Process-wide generated-workload memo used by runExperimentCell() (and
/// by ExperimentRunner's pre-generation pass). Generation is deterministic
/// so sharing across runners is safe; map nodes are stable, so the
/// returned reference stays valid for the process lifetime.
/// \returns the generated workload for \p Profile.
const GeneratedWorkload &cachedWorkload(const WorkloadProfile &Profile);

/// Accounting for one completed (benchmark, scheme) simulation: what ran,
/// where the result came from, and how long producing it took.
struct RunStats {
  std::string Benchmark;                ///< Profile name.
  Scheme SchemeKind = Scheme::Baseline; ///< Scheme the run evaluated.
  uint64_t Instructions = 0;            ///< Simulated dynamic instructions.
  bool CacheHit = false;                ///< Served from the on-disk cache.
  double WallSeconds = 0.0;             ///< Load-or-simulate wall time.
  bool Failed = false;                  ///< Cell exhausted its retries.
  ErrorCode Code = ErrorCode::InvalidInput; ///< Taxonomy (when Failed).
  std::string Reason;                   ///< Final error (when Failed).
  unsigned Attempts = 1;                ///< Simulation attempts consumed.
  /// Corrupt cache entries this cell quarantined while probing.
  uint64_t Quarantined = 0;
};

/// Caches per-benchmark simulation triples and schedules simulations,
/// serially or across a thread pool. All public members are safe to call
/// from multiple threads.
class ExperimentRunner {
public:
  /// \param Base options shared by all runs; the scheme field is overridden
  ///        per run.
  explicit ExperimentRunner(SimulationOptions Base = SimulationOptions());

  /// Runs (or returns the cached run of) \p Profile under all schemes.
  /// \returns the memoized triple; the reference stays valid for the
  ///          runner's lifetime.
  const BenchmarkRun &run(const WorkloadProfile &Profile);

  /// Runs one scheme only (used by ablation benches).
  ///
  /// Probes the on-disk result cache first (under the key's in-process
  /// lock, so concurrent workers requesting the same key simulate it only
  /// once) and publishes fresh results back to it.
  /// \returns the scheme's simulation result.
  SimulationResult runScheme(const WorkloadProfile &Profile, Scheme S);

  /// Structured core of runScheme(): probe cache → simulate under the
  /// retry/backoff/watchdog policy → publish. Never aborts; when every
  /// attempt fails the outcome carries the final error and the result is
  /// empty (scheme field set only).
  /// \returns the result and its cell outcome.
  std::pair<SimulationResult, CellOutcome>
  runSchemeChecked(const WorkloadProfile &Profile, Scheme S);

  /// Runs the full (\p Profiles × three schemes) grid on a thread pool of
  /// \p Jobs workers (0 = ThreadPool::defaultThreadCount(), i.e.
  /// DYNACE_JOBS or hardware concurrency).
  ///
  /// Results are collected in the order of \p Profiles regardless of task
  /// completion order and are bit-identical to the serial path's; the
  /// triples are also memoized, so subsequent run() calls are free.
  /// \returns one BenchmarkRun per profile, in input order.
  std::vector<BenchmarkRun> runAll(const std::vector<WorkloadProfile> &Profiles,
                                   unsigned Jobs = 0);

  /// Parallel counterpart of runScheme() for single-scheme grids (the
  /// ablation benches): runs \p Profiles under \p S on \p Jobs workers.
  /// \returns one result per profile, in input order.
  std::vector<SimulationResult>
  runAllScheme(const std::vector<WorkloadProfile> &Profiles, Scheme S,
               unsigned Jobs = 0);

  /// Default options honoring the DYNACE_INSTR_BUDGET environment variable
  /// (a per-benchmark instruction cap; 0/unset = run programs to
  /// completion).
  /// \returns the configured option set.
  static SimulationOptions defaultOptions();

  /// \returns the options shared by all of this runner's runs.
  const SimulationOptions &baseOptions() const { return Base; }

  /// Per-run accounting collected so far, one entry per completed
  /// (benchmark, scheme) simulation in completion order (nondeterministic
  /// under parallel execution; printRunStats() sorts).
  /// \returns a snapshot copy of the stats.
  std::vector<RunStats> stats() const;

private:
  void recordStats(const WorkloadProfile &Profile, Scheme S,
                   const SimulationResult &R, bool CacheHit,
                   double WallSeconds, const CellOutcome &Outcome,
                   uint64_t Quarantined);

  SimulationOptions Base;
  std::map<std::string, BenchmarkRun> Cache;
  /// Guards Cache; never held while simulating.
  std::mutex CacheMutex;
  /// Guards Stats.
  mutable std::mutex StatsMutex;
  std::vector<RunStats> Stats;
};

} // namespace dynace

#endif // DYNACE_SIM_EXPERIMENTRUNNER_H
