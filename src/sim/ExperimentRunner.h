//===- sim/ExperimentRunner.h - Paper experiment driver ---------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs each benchmark under the baseline, BBV and hotspot schemes on the
/// same generated program, caching results so several tables can be printed
/// from one set of simulations. All paper tables and figures are derived
/// from the `BenchmarkRun` triples this produces.
///
/// Two execution paths share one cache and produce identical results:
///
///  * run() / runScheme() — serial, one (benchmark, scheme) at a time;
///  * runAll() / runAllScheme() — the parallel pipeline: the whole
///    (benchmark × scheme) grid is fanned out across a ThreadPool of
///    DYNACE_JOBS workers (default: hardware concurrency) and collected in
///    deterministic input order. Every worker builds its own System from
///    the shared immutable Program, and the simulator holds no mutable
///    global state, so parallel results are bit-identical to serial ones.
///
/// Each completed (benchmark, scheme) run is recorded as a RunStats entry
/// (instructions, on-disk cache hit/miss, wall time) retrievable via
/// stats() and printable via printRunStats() — the pipeline's speedup is
/// measured, not asserted.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SIM_EXPERIMENTRUNNER_H
#define DYNACE_SIM_EXPERIMENTRUNNER_H

#include "sim/System.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dynace {

/// Results of one benchmark under all three schemes.
struct BenchmarkRun {
  std::string Name;
  SimulationResult Baseline;
  SimulationResult Bbv;
  SimulationResult Hotspot;

  /// Energy reduction of \p SchemeEnergy relative to the baseline run.
  ///
  /// A scheme that spends *more* energy than the baseline yields a
  /// negative reduction; the value is clamped to [-1, 1] so a pathological
  /// regression reads as "-100%" instead of an unbounded negative percent.
  /// Pass \p Regressed to detect that case explicitly rather than
  /// inferring it from the sign of a clamped value.
  ///
  /// \param SchemeEnergy energy consumed under the evaluated scheme.
  /// \param BaselineEnergy energy consumed under the baseline run.
  /// \param Regressed if non-null, set to true iff the scheme consumed
  ///        strictly more energy than a positive baseline.
  /// \returns 1 - SchemeEnergy / BaselineEnergy clamped to [-1, 1], or 0
  ///          when the baseline is non-positive (no meaningful ratio).
  static double reduction(double SchemeEnergy, double BaselineEnergy,
                          bool *Regressed = nullptr) {
    if (Regressed)
      *Regressed = BaselineEnergy > 0.0 && SchemeEnergy > BaselineEnergy;
    if (BaselineEnergy <= 0.0)
      return 0.0;
    double R = 1.0 - SchemeEnergy / BaselineEnergy;
    if (R < -1.0)
      return -1.0;
    if (R > 1.0)
      return 1.0;
    return R;
  }

  /// Performance degradation (cycles) of a scheme vs the baseline run.
  /// \returns SchemeCycles / BaselineCycles - 1, or 0 when the baseline
  ///          cycle count is 0.
  static double slowdown(uint64_t SchemeCycles, uint64_t BaselineCycles) {
    if (BaselineCycles == 0)
      return 0.0;
    return static_cast<double>(SchemeCycles) /
               static_cast<double>(BaselineCycles) -
           1.0;
  }
};

/// Accounting for one completed (benchmark, scheme) simulation: what ran,
/// where the result came from, and how long producing it took.
struct RunStats {
  std::string Benchmark;                ///< Profile name.
  Scheme SchemeKind = Scheme::Baseline; ///< Scheme the run evaluated.
  uint64_t Instructions = 0;            ///< Simulated dynamic instructions.
  bool CacheHit = false;                ///< Served from the on-disk cache.
  double WallSeconds = 0.0;             ///< Load-or-simulate wall time.
};

/// Caches per-benchmark simulation triples and schedules simulations,
/// serially or across a thread pool. All public members are safe to call
/// from multiple threads.
class ExperimentRunner {
public:
  /// \param Base options shared by all runs; the scheme field is overridden
  ///        per run.
  explicit ExperimentRunner(SimulationOptions Base = SimulationOptions());

  /// Runs (or returns the cached run of) \p Profile under all schemes.
  /// \returns the memoized triple; the reference stays valid for the
  ///          runner's lifetime.
  const BenchmarkRun &run(const WorkloadProfile &Profile);

  /// Runs one scheme only (used by ablation benches).
  ///
  /// Probes the on-disk result cache first (under the key's in-process
  /// lock, so concurrent workers requesting the same key simulate it only
  /// once) and publishes fresh results back to it.
  /// \returns the scheme's simulation result.
  SimulationResult runScheme(const WorkloadProfile &Profile, Scheme S);

  /// Runs the full (\p Profiles × three schemes) grid on a thread pool of
  /// \p Jobs workers (0 = ThreadPool::defaultThreadCount(), i.e.
  /// DYNACE_JOBS or hardware concurrency).
  ///
  /// Results are collected in the order of \p Profiles regardless of task
  /// completion order and are bit-identical to the serial path's; the
  /// triples are also memoized, so subsequent run() calls are free.
  /// \returns one BenchmarkRun per profile, in input order.
  std::vector<BenchmarkRun> runAll(const std::vector<WorkloadProfile> &Profiles,
                                   unsigned Jobs = 0);

  /// Parallel counterpart of runScheme() for single-scheme grids (the
  /// ablation benches): runs \p Profiles under \p S on \p Jobs workers.
  /// \returns one result per profile, in input order.
  std::vector<SimulationResult>
  runAllScheme(const std::vector<WorkloadProfile> &Profiles, Scheme S,
               unsigned Jobs = 0);

  /// Default options honoring the DYNACE_INSTR_BUDGET environment variable
  /// (a per-benchmark instruction cap; 0/unset = run programs to
  /// completion).
  /// \returns the configured option set.
  static SimulationOptions defaultOptions();

  /// \returns the options shared by all of this runner's runs.
  const SimulationOptions &baseOptions() const { return Base; }

  /// Per-run accounting collected so far, one entry per completed
  /// (benchmark, scheme) simulation in completion order (nondeterministic
  /// under parallel execution; printRunStats() sorts).
  /// \returns a snapshot copy of the stats.
  std::vector<RunStats> stats() const;

private:
  const GeneratedWorkload &workload(const WorkloadProfile &Profile);
  void recordStats(const WorkloadProfile &Profile, Scheme S,
                   const SimulationResult &R, bool CacheHit,
                   double WallSeconds);

  SimulationOptions Base;
  std::map<std::string, GeneratedWorkload> Workloads;
  std::map<std::string, BenchmarkRun> Cache;
  /// Serializes workload generation and map access.
  std::mutex WorkloadsMutex;
  /// Guards Cache; never held while simulating.
  std::mutex CacheMutex;
  /// Guards Stats.
  mutable std::mutex StatsMutex;
  std::vector<RunStats> Stats;
};

} // namespace dynace

#endif // DYNACE_SIM_EXPERIMENTRUNNER_H
