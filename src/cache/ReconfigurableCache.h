//===- cache/ReconfigurableCache.h - Size-adaptable cache -------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache whose size can be switched at run time among a fixed list of
/// settings (Table 2: L1D 64/32/16/8 KB, L2 1 MB/512/256/128 KB). Changing
/// the size remaps the set index, so a reconfiguration writes back all dirty
/// lines and invalidates the array — the reconfiguration overhead the paper
/// charges in both cycles and energy.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_CACHE_RECONFIGURABLECACHE_H
#define DYNACE_CACHE_RECONFIGURABLECACHE_H

#include "cache/Cache.h"

#include <memory>
#include <string>
#include <vector>

namespace dynace {

/// Result of a reconfiguration request.
struct ReconfigResult {
  /// True when the setting actually changed.
  bool Changed = false;
  /// Dirty lines written back to the next level.
  uint64_t Writebacks = 0;
};

/// A size-adaptable cache. Exactly one setting is active; switching flushes
/// dirty state. Per-setting access statistics are kept so the power model
/// can charge each access at the energy of the configuration that served it.
class ReconfigurableCache {
public:
  /// \param Settings allowed configurations, typically largest first.
  /// \param InitialSetting index into \p Settings active at reset.
  /// \param RetainOnDownsize selective-sets retention: when shrinking, the
  ///        surviving sets keep their (re-tagged) contents, so only lines
  ///        in the disabled sets are written back and lost. Growing still
  ///        invalidates (the set-index mapping widens). When false, every
  ///        reconfiguration flushes the whole array (the conservative
  ///        model; see the ablation bench).
  ReconfigurableCache(std::vector<CacheGeometry> Settings,
                      unsigned InitialSetting, std::string Name,
                      bool RetainOnDownsize = true);

  /// Performs one access on the active configuration. Goes through the
  /// raw active-cache pointer: this is called for every simulated load,
  /// store and L2 access, and the double indirection through the
  /// unique_ptr vector costs two dependent loads per access.
  CacheAccessResult access(uint64_t Addr, bool IsWrite) {
    return ActiveCache->access(Addr, IsWrite);
  }

  /// \returns true if \p Addr hits in the active configuration, without
  /// updating any state.
  bool probe(uint64_t Addr) const { return ActiveCache->probe(Addr); }

  /// Switches to \p NewSetting. Dirty lines of the outgoing configuration
  /// are written back; their addresses are appended to \p WritebackAddrs
  /// when non-null so the hierarchy can replay them into the next level.
  ReconfigResult reconfigure(unsigned NewSetting,
                             std::vector<uint64_t> *WritebackAddrs = nullptr);

  /// Active setting index.
  unsigned setting() const { return Active; }

  /// Number of available settings.
  unsigned numSettings() const { return static_cast<unsigned>(Caches.size()); }

  /// Geometry of the active setting.
  const CacheGeometry &geometry() const { return Caches[Active]->geometry(); }

  /// Geometry of setting \p S.
  const CacheGeometry &geometryOf(unsigned S) const {
    return Caches[S]->geometry();
  }

  /// Per-setting statistics (accesses made while that setting was active).
  const CacheStats &statsOf(unsigned S) const { return Caches[S]->stats(); }

  /// Aggregate statistics across all settings.
  CacheStats totalStats() const;

  /// Number of completed reconfigurations (setting actually changed).
  uint64_t reconfigurationCount() const { return ReconfigCount; }

  /// Total dirty lines written back due to reconfigurations.
  uint64_t reconfigurationWritebacks() const { return ReconfigWritebacks; }

  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::vector<std::unique_ptr<Cache>> Caches;
  unsigned Active;
  /// Caches[Active].get(), refreshed by the constructor and
  /// reconfigure(); the per-access hot path dereferences only this.
  Cache *ActiveCache = nullptr;
  bool RetainOnDownsize;
  uint64_t ReconfigCount = 0;
  uint64_t ReconfigWritebacks = 0;
};

} // namespace dynace

#endif // DYNACE_CACHE_RECONFIGURABLECACHE_H
