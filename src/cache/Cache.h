//===- cache/Cache.h - Set-associative cache model --------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A write-back, write-allocate, true-LRU set-associative cache model, the
/// building block for the reconfigurable L1D/L2 caches of Table 2.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_CACHE_CACHE_H
#define DYNACE_CACHE_CACHE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace dynace {

/// Static shape of one cache configuration.
struct CacheGeometry {
  uint64_t SizeBytes = 0;
  uint32_t BlockBytes = 64;
  uint32_t Assoc = 2;
  uint32_t HitLatency = 1;

  uint64_t numSets() const {
    assert(SizeBytes % (static_cast<uint64_t>(BlockBytes) * Assoc) == 0 &&
           "size must be a multiple of block * assoc");
    return SizeBytes / (static_cast<uint64_t>(BlockBytes) * Assoc);
  }

  uint64_t numLines() const { return SizeBytes / BlockBytes; }

  bool operator==(const CacheGeometry &O) const = default;
};

/// Result of a single cache access.
struct CacheAccessResult {
  bool Hit = false;
  /// True when the access evicted a dirty line (write-back to the next
  /// level).
  bool EvictedDirty = false;
  /// Block-aligned address of the evicted dirty line (valid when
  /// EvictedDirty).
  uint64_t EvictedAddr = 0;
};

/// Lifetime access statistics.
struct CacheStats {
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t ReadMisses = 0;
  uint64_t WriteMisses = 0;
  uint64_t Writebacks = 0;

  uint64_t accesses() const { return Reads + Writes; }
  uint64_t misses() const { return ReadMisses + WriteMisses; }
  double missRate() const {
    uint64_t A = accesses();
    return A ? static_cast<double>(misses()) / static_cast<double>(A) : 0.0;
  }
};

/// A single-configuration cache.
class Cache {
public:
  explicit Cache(const CacheGeometry &G, std::string Name = "cache");

  /// Performs one access. Misses allocate; dirty victims are reported so the
  /// hierarchy can charge the next level for the write-back. The hit-in-MRU
  /// way case — the overwhelmingly common one thanks to spatial locality —
  /// is inlined; everything else takes the out-of-line slow path.
  CacheAccessResult access(uint64_t Addr, bool IsWrite) {
    // Same-block shortcut: spatial runs in the data caches and page runs
    // in the TLBs revisit one block many times in a row. A repeat visit
    // needs only the counters and the dirty bit — one shift-and-compare
    // replaces the set/way indexing chain (three dependent loads). The
    // LRU stamp is deliberately NOT refreshed: victim choice compares
    // stamps by order, not value, and between consecutive hits to one
    // block no other line in this cache is stamped, so keeping the run's
    // first stamp (and not advancing UseClock) preserves the relative
    // order of every stamp — hit/miss outcomes and LRU victims are
    // bit-identical.
    if ((Addr >> BlockShift) == LastBlock) {
      Stats.Reads += !IsWrite;
      Stats.Writes += IsWrite;
      LastLine->Dirty |= IsWrite;
      CacheAccessResult Result;
      Result.Hit = true;
      return Result;
    }
    uint64_t Set = setIndexOf(Addr);
    Line &L = Lines[Set * Geom.Assoc + Mru[Set]];
    // Single fused condition and unconditional counter updates: IsWrite is
    // data-dependent, so branching on it here mispredicts constantly.
    if (L.Valid & (L.Tag == tagOf(Addr))) {
      Stats.Reads += !IsWrite;
      Stats.Writes += IsWrite;
      L.LastUse = ++UseClock;
      L.Dirty |= IsWrite;
      LastBlock = Addr >> BlockShift;
      LastLine = &L;
      CacheAccessResult Result;
      Result.Hit = true;
      return Result;
    }
    return accessSlow(Addr, IsWrite);
  }

  /// \returns true if \p Addr currently hits, without updating state.
  bool probe(uint64_t Addr) const;

  /// Invalidates everything; \returns the number of dirty lines that were
  /// lost (callers wanting write-back semantics use flushDirty() first).
  uint64_t invalidateAll();

  /// Writes back all dirty lines (marks them clean, keeps them valid).
  /// \returns the number of lines written back and appends their addresses
  /// to \p Addrs when non-null.
  uint64_t flushDirty(std::vector<uint64_t> *Addrs = nullptr);

  /// Number of currently dirty lines.
  uint64_t dirtyLineCount() const;

  /// One resident line, reported by exportLines().
  struct LineImage {
    uint64_t Addr = 0; ///< Block-aligned address.
    bool Dirty = false;
    uint64_t SetIndex = 0;
  };

  /// Snapshots all valid lines (for reconfiguration-time migration).
  std::vector<LineImage> exportLines() const;

  /// Installs \p Addr as a valid line without touching access statistics
  /// (reconfiguration-time migration). Evicts silently when the set is
  /// full; dirty victims are appended to \p LostDirty when non-null.
  void importLine(uint64_t Addr, bool Dirty,
                  std::vector<uint64_t> *LostDirty = nullptr);

  const CacheGeometry &geometry() const { return Geom; }
  const CacheStats &stats() const { return Stats; }
  const std::string &name() const { return Name; }

private:
  struct Line {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
    bool Dirty = false;
  };

  /// Slow path of access(): non-MRU hits, misses, allocation, eviction.
  CacheAccessResult accessSlow(uint64_t Addr, bool IsWrite);

  // Block size and set count are powers of two (asserted in the
  // constructor), so the address split is shifts and masks — `/` and `%`
  // here would be real divides on every access.
  uint64_t setIndexOf(uint64_t Addr) const {
    return (Addr >> BlockShift) & (NumSets - 1);
  }
  uint64_t tagOf(uint64_t Addr) const { return Addr >> TagShift; }
  uint64_t addrOf(uint64_t Tag, uint64_t SetIndex) const {
    return (Tag << TagShift) | (SetIndex << BlockShift);
  }

  CacheGeometry Geom;
  std::string Name;
  uint64_t NumSets;
  uint32_t BlockShift = 0; ///< log2(BlockBytes).
  uint32_t TagShift = 0;   ///< log2(BlockBytes * NumSets).
  std::vector<Line> Lines; ///< NumSets * Assoc, set-major.
  /// Most-recently-hit way per set. Pure lookup accelerator for access():
  /// hit/miss outcomes and LRU victims are unaffected.
  std::vector<uint32_t> Mru;
  /// Same-block shortcut state: when LastBlock != kNoBlock, LastLine points
  /// at the resident line holding that block. Every path that retags or
  /// invalidates lines either refreshes the pair (accessSlow) or resets it
  /// (invalidateAll, importLine), so the pair can never go stale.
  static constexpr uint64_t kNoBlock = ~0ull;
  uint64_t LastBlock = kNoBlock;
  Line *LastLine = nullptr;
  uint64_t UseClock = 0;
  CacheStats Stats;
};

} // namespace dynace

#endif // DYNACE_CACHE_CACHE_H
