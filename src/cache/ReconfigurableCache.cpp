//===- cache/ReconfigurableCache.cpp --------------------------------------==//

#include "cache/ReconfigurableCache.h"

#include "obs/Trace.h"

using namespace dynace;

ReconfigurableCache::ReconfigurableCache(std::vector<CacheGeometry> Settings,
                                         unsigned InitialSetting,
                                         std::string Name,
                                         bool RetainOnDownsize)
    : Name(std::move(Name)), Active(InitialSetting),
      RetainOnDownsize(RetainOnDownsize) {
  assert(!Settings.empty() && "reconfigurable cache needs settings");
  assert(InitialSetting < Settings.size() && "initial setting out of range");
  Caches.reserve(Settings.size());
  for (size_t I = 0, E = Settings.size(); I != E; ++I)
    Caches.push_back(std::make_unique<Cache>(
        Settings[I], this->Name + "#" + std::to_string(I)));
  ActiveCache = Caches[Active].get();
}

ReconfigResult ReconfigurableCache::reconfigure(
    unsigned NewSetting, std::vector<uint64_t> *WritebackAddrs) {
  assert(NewSetting < Caches.size() && "setting out of range");
  ReconfigResult Result;
  if (NewSetting == Active)
    return Result;

  Cache &Old = *Caches[Active];
  Cache &New = *Caches[NewSetting];
  uint64_t NewSets = New.geometry().numSets();
  uint64_t OldSets = Old.geometry().numSets();

  if (RetainOnDownsize && NewSets < OldSets &&
      New.geometry().BlockBytes == Old.geometry().BlockBytes &&
      New.geometry().Assoc == Old.geometry().Assoc) {
    // Selective sets: sets [0, NewSets) survive the downsize; a block in a
    // surviving set indexes to the same set under the narrower mask, so
    // its data stays correct (tags are reinterpreted). Lines in disabled
    // sets are written back if dirty and dropped.
    for (const Cache::LineImage &L : Old.exportLines()) {
      if (L.SetIndex < NewSets) {
        New.importLine(L.Addr, L.Dirty);
        continue;
      }
      if (L.Dirty) {
        ++Result.Writebacks;
        if (WritebackAddrs)
          WritebackAddrs->push_back(L.Addr);
      }
    }
    Old.invalidateAll();
  } else {
    // Growing (or heterogeneous geometry): the set-index mapping widens,
    // stored tags cannot be reinterpreted, so write back dirty lines and
    // start cold.
    Result.Writebacks = Old.flushDirty(WritebackAddrs);
    Old.invalidateAll();
  }

  Active = NewSetting;
  ActiveCache = Caches[Active].get();
  Result.Changed = true;
  ++ReconfigCount;
  ReconfigWritebacks += Result.Writebacks;
  DYNACE_TRACE_INSTANT("reconfig", "cache.reconfigure",
                       obs::traceArg("cache", Name) + ", " +
                           obs::traceArg("setting", uint64_t(NewSetting)) +
                           ", " +
                           obs::traceArg("writebacks", Result.Writebacks));
  return Result;
}

CacheStats ReconfigurableCache::totalStats() const {
  CacheStats Total;
  for (const auto &C : Caches) {
    const CacheStats &S = C->stats();
    Total.Reads += S.Reads;
    Total.Writes += S.Writes;
    Total.ReadMisses += S.ReadMisses;
    Total.WriteMisses += S.WriteMisses;
    Total.Writebacks += S.Writebacks;
  }
  return Total;
}
