//===- cache/Tlb.h - Translation lookaside buffer ---------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TLB model (Table 2: 128-entry DTLB/ITLB). Modeled as a 32-set, 4-way
/// structure over 4 KB pages; the paper's fully associative organization
/// differs negligibly at this capacity for our workloads.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_CACHE_TLB_H
#define DYNACE_CACHE_TLB_H

#include "cache/Cache.h"

namespace dynace {

/// Page-granularity translation buffer.
class Tlb {
public:
  /// \param Entries total entries (must be a multiple of \p Assoc).
  /// \param MissPenalty cycles charged on a miss (page-table walk).
  Tlb(uint32_t Entries, uint32_t Assoc, uint32_t MissPenalty,
      std::string Name);

  /// Touches the page containing \p Addr. \returns the cycle penalty
  /// (0 on hit, MissPenalty on miss). Inline: the underlying page hit is
  /// the hot path on every data access and fetch block.
  uint32_t access(uint64_t Addr) {
    return Storage.access(Addr, /*IsWrite=*/false).Hit ? 0 : MissPenalty;
  }

  uint64_t accesses() const { return Storage.stats().accesses(); }
  uint64_t misses() const { return Storage.stats().misses(); }

  static constexpr uint32_t kPageBytes = 4096;

private:
  Cache Storage;
  uint32_t MissPenalty;
};

} // namespace dynace

#endif // DYNACE_CACHE_TLB_H
