//===- cache/MemoryHierarchy.cpp ------------------------------------------==//

#include "cache/MemoryHierarchy.h"

using namespace dynace;

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &Config)
    : Config(Config), L1I(Config.L1I, "L1I"),
      L1D(Config.L1DSettings, Config.L1DInitial, "L1D",
          Config.RetainOnDownsize),
      L2(Config.L2Settings, Config.L2Initial, "L2",
         Config.RetainOnDownsize),
      Itlb(Config.TlbEntries, Config.TlbAssoc, Config.TlbMissPenalty, "ITLB"),
      Dtlb(Config.TlbEntries, Config.TlbAssoc, Config.TlbMissPenalty, "DTLB") {
  L1DHitLat = L1D.geometry().HitLatency;
  L2HitLat = L2.geometry().HitLatency;
}

bool MemoryHierarchy::accessL2(uint64_t Addr, bool IsWrite) {
  CacheAccessResult R = L2.access(Addr, IsWrite);
  if (!R.Hit)
    ++MemReads; // Line fill from memory.
  if (R.EvictedDirty)
    ++MemWrites;
  return R.Hit;
}

ReconfigCost MemoryHierarchy::reconfigureL1D(unsigned Setting) {
  ReconfigCost Cost;
  if (Setting == L1D.setting())
    return Cost;
  std::vector<uint64_t> Flushed;
  ReconfigResult R = L1D.reconfigure(Setting, &Flushed);
  Cost.Changed = R.Changed;
  Cost.Writebacks = R.Writebacks;
  // Dirty lines drain into the L2; model a pipelined burst (4 cycles per
  // line) plus a fixed control overhead.
  for (uint64_t Addr : Flushed)
    accessL2(Addr, /*IsWrite=*/true);
  L1DHitLat = L1D.geometry().HitLatency;
  Cost.Cycles = 64 + Cost.Writebacks * 4;
  return Cost;
}

ReconfigCost MemoryHierarchy::reconfigureL2(unsigned Setting) {
  ReconfigCost Cost;
  if (Setting == L2.setting())
    return Cost;
  ReconfigResult R = L2.reconfigure(Setting, nullptr);
  Cost.Changed = R.Changed;
  Cost.Writebacks = R.Writebacks;
  MemWrites += R.Writebacks;
  L2HitLat = L2.geometry().HitLatency;
  // Dirty lines drain to memory; slower per line than an L1D flush.
  Cost.Cycles = 128 + Cost.Writebacks * 8;
  return Cost;
}
