//===- cache/MemoryHierarchy.h - Two-level memory hierarchy -----*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated memory hierarchy of Table 2: fixed L1I, reconfigurable L1D,
/// reconfigurable unified L2, ITLB/DTLB, and main memory. Accesses return
/// latency; all structural events (misses, write-backs, reconfiguration
/// flushes) are propagated level to level so statistics and energy are
/// consistent.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_CACHE_MEMORYHIERARCHY_H
#define DYNACE_CACHE_MEMORYHIERARCHY_H

#include "cache/Cache.h"
#include "cache/ReconfigurableCache.h"
#include "cache/Tlb.h"

#include <cstdint>
#include <vector>

namespace dynace {

/// Construction parameters. Defaults reproduce Table 2 of the paper with
/// every capacity divided by kSimScale-like factor 8: runs are ~1/200 of
/// the paper's instruction counts and reconfiguration intervals are 1/10,
/// so cache capacities shrink by a similar factor to keep the *relative*
/// cost of reconfiguration flushes, refills and tuning identical to the
/// paper's proportions. The 8x ladder between adjacent settings — which is
/// what the energy reductions depend on — is exactly the paper's.
struct HierarchyConfig {
  CacheGeometry L1I{8 * 1024, 64, 2, 1};
  std::vector<CacheGeometry> L1DSettings = {
      {8 * 1024, 64, 2, 1},
      {4 * 1024, 64, 2, 1},
      {2 * 1024, 64, 2, 1},
      {1 * 1024, 64, 2, 1},
  };
  unsigned L1DInitial = 0;
  std::vector<CacheGeometry> L2Settings = {
      {128 * 1024, 128, 4, 10},
      {64 * 1024, 128, 4, 10},
      {32 * 1024, 128, 4, 10},
      {16 * 1024, 128, 4, 10},
  };
  unsigned L2Initial = 0;
  uint32_t TlbEntries = 128;
  uint32_t TlbAssoc = 4;
  uint32_t TlbMissPenalty = 30;
  uint32_t MemoryLatency = 100;
  /// Selective-sets retention on downsize (see ReconfigurableCache).
  bool RetainOnDownsize = true;
};

/// Outcome of one data access.
struct MemAccessInfo {
  uint32_t Latency = 0;
  bool L1Hit = false;
  bool L2Hit = false; ///< Meaningful only when !L1Hit.
};

/// Cycle cost of a cache reconfiguration (flush + control overhead).
struct ReconfigCost {
  bool Changed = false;
  uint64_t Writebacks = 0;
  uint64_t Cycles = 0;
};

/// Two-level hierarchy with reconfigurable L1D and L2.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const HierarchyConfig &Config = HierarchyConfig());

  /// One data-side load/store. Inline — this is the hot path of every
  /// load/store the core consumes; the common DTLB-hit/L1D-hit case
  /// collapses to the caches' inlined MRU probes.
  MemAccessInfo dataAccess(uint64_t Addr, bool IsWrite) {
    MemAccessInfo Info;
    Info.Latency = Dtlb.access(Addr);

    CacheAccessResult R1 = L1D.access(Addr, IsWrite);
    Info.Latency += L1DHitLat;
    Info.L1Hit = R1.Hit;
    if (R1.EvictedDirty)
      accessL2(R1.EvictedAddr, /*IsWrite=*/true);
    if (R1.Hit)
      return Info;

    Info.L2Hit = accessL2(Addr, /*IsWrite=*/false);
    Info.Latency += L2HitLat;
    if (!Info.L2Hit)
      Info.Latency += Config.MemoryLatency;
    return Info;
  }

  /// One instruction fetch (called per fetch block, not per instruction).
  /// \returns the fetch latency in cycles.
  uint32_t instrFetch(uint64_t Addr) {
    uint32_t Latency = Itlb.access(Addr);
    CacheAccessResult R = L1I.access(Addr, /*IsWrite=*/false);
    Latency += Config.L1I.HitLatency;
    if (R.Hit)
      return Latency;
    bool L2Hit = accessL2(Addr, /*IsWrite=*/false);
    Latency += L2HitLat;
    if (!L2Hit)
      Latency += Config.MemoryLatency;
    return Latency;
  }

  /// Switches the L1D cache to \p Setting. Flushed dirty lines are written
  /// into the L2 (consuming L2 bandwidth/energy).
  ReconfigCost reconfigureL1D(unsigned Setting);

  /// Switches the L2 cache to \p Setting. Flushed dirty lines go to memory.
  ReconfigCost reconfigureL2(unsigned Setting);

  ReconfigurableCache &l1d() { return L1D; }
  const ReconfigurableCache &l1d() const { return L1D; }
  ReconfigurableCache &l2() { return L2; }
  const ReconfigurableCache &l2() const { return L2; }
  const Cache &l1i() const { return L1I; }
  const Tlb &itlb() const { return Itlb; }
  const Tlb &dtlb() const { return Dtlb; }

  /// Main-memory traffic counters.
  uint64_t memoryReads() const { return MemReads; }
  uint64_t memoryWrites() const { return MemWrites; }

  const HierarchyConfig &config() const { return Config; }

private:
  /// Sends one access into the L2, forwarding any dirty victim to memory.
  /// \returns true on L2 hit.
  bool accessL2(uint64_t Addr, bool IsWrite);

  HierarchyConfig Config;
  Cache L1I;
  ReconfigurableCache L1D;
  ReconfigurableCache L2;
  Tlb Itlb;
  Tlb Dtlb;
  /// Hit latencies of the active L1D/L2 settings, cached here so the
  /// per-access path avoids two pointer hops through the reconfigurable
  /// wrappers. Refreshed on every reconfiguration.
  uint32_t L1DHitLat = 1;
  uint32_t L2HitLat = 1;
  uint64_t MemReads = 0;
  uint64_t MemWrites = 0;
};

} // namespace dynace

#endif // DYNACE_CACHE_MEMORYHIERARCHY_H
