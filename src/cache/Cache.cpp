//===- cache/Cache.cpp ----------------------------------------------------==//

#include "cache/Cache.h"

#include <bit>

using namespace dynace;

Cache::Cache(const CacheGeometry &G, std::string Name)
    : Geom(G), Name(std::move(Name)), NumSets(G.numSets()) {
  assert(std::has_single_bit(NumSets) && "set count must be a power of two");
  assert(std::has_single_bit(static_cast<uint64_t>(G.BlockBytes)) &&
         "block size must be a power of two");
  assert(G.Assoc >= 1 && "associativity must be at least 1");
  BlockShift = static_cast<uint32_t>(std::countr_zero(
      static_cast<uint64_t>(G.BlockBytes)));
  TagShift = BlockShift + static_cast<uint32_t>(std::countr_zero(NumSets));
  Lines.resize(NumSets * G.Assoc);
  Mru.assign(NumSets, 0);
}

CacheAccessResult Cache::accessSlow(uint64_t Addr, bool IsWrite) {
  CacheAccessResult Result;
  uint64_t Set = setIndexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  Line *Base = &Lines[Set * Geom.Assoc];
  ++UseClock;

  Stats.Reads += !IsWrite;
  Stats.Writes += IsWrite;

  // The inlined fast path already rejected the MRU way; re-checking it in
  // the scan is harmless and keeps this simple.
  uint32_t &MruWay = Mru[Set];
  for (uint32_t W = 0; W != Geom.Assoc; ++W) {
    Line &L = Base[W];
    if (L.Valid & (L.Tag == Tag)) {
      L.LastUse = UseClock;
      L.Dirty |= IsWrite;
      MruWay = W;
      LastBlock = Addr >> BlockShift;
      LastLine = &L;
      Result.Hit = true;
      return Result;
    }
  }

  // Miss: allocate into the LRU (or an invalid) way.
  Stats.ReadMisses += !IsWrite;
  Stats.WriteMisses += IsWrite;

  Line *Victim = &Base[0];
  for (uint32_t W = 0; W != Geom.Assoc; ++W) {
    Line &L = Base[W];
    if (!L.Valid) {
      Victim = &L;
      break;
    }
    if (L.LastUse < Victim->LastUse)
      Victim = &L;
  }

  if (Victim->Valid && Victim->Dirty) {
    ++Stats.Writebacks;
    Result.EvictedDirty = true;
    Result.EvictedAddr = addrOf(Victim->Tag, Set);
  }
  Victim->Valid = true;
  Victim->Dirty = IsWrite;
  Victim->Tag = Tag;
  Victim->LastUse = UseClock;
  MruWay = static_cast<uint32_t>(Victim - Base);
  LastBlock = Addr >> BlockShift;
  LastLine = Victim;
  return Result;
}

bool Cache::probe(uint64_t Addr) const {
  uint64_t Set = setIndexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  const Line *Base = &Lines[Set * Geom.Assoc];
  for (uint32_t W = 0; W != Geom.Assoc; ++W)
    if (Base[W].Valid && Base[W].Tag == Tag)
      return true;
  return false;
}

uint64_t Cache::invalidateAll() {
  LastBlock = kNoBlock;
  LastLine = nullptr;
  uint64_t DirtyLost = 0;
  for (Line &L : Lines) {
    if (L.Valid && L.Dirty)
      ++DirtyLost;
    L = Line();
  }
  return DirtyLost;
}

uint64_t Cache::flushDirty(std::vector<uint64_t> *Addrs) {
  uint64_t Flushed = 0;
  for (uint64_t Set = 0; Set != NumSets; ++Set) {
    Line *Base = &Lines[Set * Geom.Assoc];
    for (uint32_t W = 0; W != Geom.Assoc; ++W) {
      Line &L = Base[W];
      if (!L.Valid || !L.Dirty)
        continue;
      L.Dirty = false;
      ++Flushed;
      ++Stats.Writebacks;
      if (Addrs)
        Addrs->push_back(addrOf(L.Tag, Set));
    }
  }
  return Flushed;
}

uint64_t Cache::dirtyLineCount() const {
  uint64_t N = 0;
  for (const Line &L : Lines)
    if (L.Valid && L.Dirty)
      ++N;
  return N;
}

std::vector<Cache::LineImage> Cache::exportLines() const {
  std::vector<LineImage> Out;
  for (uint64_t Set = 0; Set != NumSets; ++Set) {
    const Line *Base = &Lines[Set * Geom.Assoc];
    for (uint32_t W = 0; W != Geom.Assoc; ++W) {
      const Line &L = Base[W];
      if (!L.Valid)
        continue;
      Out.push_back({addrOf(L.Tag, Set), L.Dirty, Set});
    }
  }
  return Out;
}

void Cache::importLine(uint64_t Addr, bool Dirty,
                       std::vector<uint64_t> *LostDirty) {
  LastBlock = kNoBlock;
  LastLine = nullptr;
  uint64_t Set = setIndexOf(Addr);
  uint64_t Tag = tagOf(Addr);
  Line *Base = &Lines[Set * Geom.Assoc];
  Line *Victim = &Base[0];
  for (uint32_t W = 0; W != Geom.Assoc; ++W) {
    Line &L = Base[W];
    if (L.Valid && L.Tag == Tag) {
      L.Dirty |= Dirty;
      return; // Already resident.
    }
    if (!L.Valid) {
      Victim = &L;
      break;
    }
    if (L.LastUse < Victim->LastUse)
      Victim = &L;
  }
  if (Victim->Valid && Victim->Dirty && LostDirty)
    LostDirty->push_back(addrOf(Victim->Tag, Set));
  Victim->Valid = true;
  Victim->Dirty = Dirty;
  Victim->Tag = Tag;
  Victim->LastUse = ++UseClock;
}
