//===- cache/Tlb.cpp ------------------------------------------------------==//

#include "cache/Tlb.h"

using namespace dynace;

static CacheGeometry tlbGeometry(uint32_t Entries, uint32_t Assoc) {
  CacheGeometry G;
  G.BlockBytes = Tlb::kPageBytes;
  G.Assoc = Assoc;
  G.SizeBytes = static_cast<uint64_t>(Entries) * Tlb::kPageBytes;
  G.HitLatency = 1;
  return G;
}

Tlb::Tlb(uint32_t Entries, uint32_t Assoc, uint32_t MissPenalty,
         std::string Name)
    : Storage(tlbGeometry(Entries, Assoc), std::move(Name)),
      MissPenalty(MissPenalty) {}
