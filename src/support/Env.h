//===- support/Env.h - Validated environment-variable parsing ---*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict parsing for the numeric DYNACE_* environment variables
/// (DYNACE_INSTR_BUDGET, DYNACE_JOBS, DYNACE_MAX_RETRIES, ...). The
/// previous strtoull/strtol readers silently accepted garbage — "abc"
/// parsed as 0, "-4" wrapped to 2^64-4, and out-of-range values overflowed
/// — turning a shell typo into a simulation with the wrong budget.
///
/// envUnsignedChecked() is the structured core: it rejects anything that
/// is not a plain non-negative decimal integer in the caller's stated
/// range with an InvalidInput error. envUnsignedOr() wraps it for
/// process-startup knobs, where a misread value should stop the run with a
/// clear diagnostic rather than simulate with the wrong configuration.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_ENV_H
#define DYNACE_SUPPORT_ENV_H

#include "support/Status.h"

#include <cstdint>
#include <optional>
#include <string>

namespace dynace {

/// Parses \p Text as a plain non-negative decimal integer ("123"). No
/// signs, whitespace, hex/octal prefixes, or trailing characters are
/// accepted.
/// \returns the value, or std::nullopt when \p Text is null, empty,
///          malformed, or exceeds uint64_t.
std::optional<uint64_t> parseUnsignedInt(const char *Text);

/// Reads environment variable \p Name as an unsigned integer, reporting
/// problems as structured errors.
///
/// Unset (or set to the empty string) yields \p Default, which is NOT
/// range-checked — it may act as an out-of-band "unset" marker. A set
/// value must parse per parseUnsignedInt() and lie in [\p Min, \p Max].
/// \returns the parsed value, \p Default, or an InvalidInput error naming
///          the variable, the offending value and the accepted range.
Expected<uint64_t> envUnsignedChecked(const char *Name, uint64_t Default,
                                      uint64_t Min = 0,
                                      uint64_t Max = UINT64_MAX);

/// Fatal wrapper over envUnsignedChecked() for process-startup knobs: on
/// error it prints the structured "[dynace] fatal: ..." diagnostic and
/// terminates the process (exit code 2) rather than running a simulation
/// with a silently misread knob.
/// \returns the parsed value or \p Default.
uint64_t envUnsignedOr(const char *Name, uint64_t Default, uint64_t Min = 0,
                       uint64_t Max = UINT64_MAX);

/// Parses \p Text as a plain non-negative decimal floating-point number
/// ("0.9", "12", "0.25"). No signs, whitespace, exponents, hex floats, or
/// trailing characters are accepted — the same strictness contract as
/// parseUnsignedInt(), so a shell typo cannot silently skew a sweep.
/// \returns the value, or std::nullopt when \p Text is null, empty,
///          malformed, or not finite.
std::optional<double> parseUnsignedDouble(const char *Text);

/// Reads environment variable \p Name as a non-negative double
/// (DYNACE_ZIPF_THETA), mirroring envUnsignedChecked(): unset/empty yields
/// \p Default (not range-checked), a set value must parse per
/// parseUnsignedDouble() and lie in [\p Min, \p Max].
/// \returns the parsed value, \p Default, or an InvalidInput error naming
///          the variable, the offending value and the accepted range.
Expected<double> envDoubleChecked(const char *Name, double Default,
                                  double Min = 0.0, double Max = 1e308);

/// Fatal wrapper over envDoubleChecked(), mirroring envUnsignedOr().
/// \returns the parsed value or \p Default.
double envDoubleOr(const char *Name, double Default, double Min = 0.0,
                   double Max = 1e308);

/// Reads environment variable \p Name as a string. The single point of
/// getenv() truth for string-valued DYNACE_* knobs (DYNACE_TRACE,
/// DYNACE_METRICS, DYNACE_FAULT_SPEC, DYNACE_CACHE_DIR): unlike raw
/// std::getenv, it normalises "unset" and "set to empty" to the same
/// \p Default and copies out of the environment so later setenv calls
/// cannot invalidate the result.
/// \returns the variable's value, or \p Default when unset or empty.
std::string envString(const char *Name, const std::string &Default = "");

/// Reads environment variable \p Name as a boolean flag with the same
/// strict-parse contract as the numeric readers: exactly "0"/"false"/"off"
/// and "1"/"true"/"on" (lower case) are accepted; unset or empty yields
/// \p Default; anything else ("yes", "TRUE", "2") is an InvalidInput error
/// naming the variable and the accepted spellings.
Expected<bool> envBoolChecked(const char *Name, bool Default);

/// Fatal wrapper over envBoolChecked(), mirroring envUnsignedOr().
/// \returns the parsed flag or \p Default.
bool envBoolOr(const char *Name, bool Default);

} // namespace dynace

#endif // DYNACE_SUPPORT_ENV_H
