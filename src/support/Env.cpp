//===- support/Env.cpp ----------------------------------------------------==//

#include "support/Env.h"

#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace dynace;

std::optional<uint64_t> dynace::parseUnsignedInt(const char *Text) {
  if (!Text || *Text == '\0')
    return std::nullopt;
  // from_chars already rejects signs, whitespace and base prefixes; the
  // end-pointer check rejects trailing characters ("10x", "3.5").
  uint64_t Value = 0;
  const char *End = Text + std::strlen(Text);
  std::from_chars_result R = std::from_chars(Text, End, Value, 10);
  if (R.ec != std::errc() || R.ptr != End)
    return std::nullopt;
  return Value;
}

Expected<uint64_t> dynace::envUnsignedChecked(const char *Name,
                                              uint64_t Default, uint64_t Min,
                                              uint64_t Max) {
  const char *Text = std::getenv(Name);
  if (!Text || *Text == '\0')
    return Default;
  std::optional<uint64_t> Value = parseUnsignedInt(Text);
  if (!Value) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s='%s' is not a valid non-negative integer (plain "
                  "decimal, no sign/suffix, <= %" PRIu64 ")",
                  Name, Text, Max);
    return Status::error(ErrorCode::InvalidInput, Buf);
  }
  if (*Value < Min || *Value > Max) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s=%" PRIu64 " is out of range; expected a value in "
                  "[%" PRIu64 ", %" PRIu64 "]",
                  Name, *Value, Min, Max);
    return Status::error(ErrorCode::InvalidInput, Buf);
  }
  return *Value;
}

uint64_t dynace::envUnsignedOr(const char *Name, uint64_t Default,
                               uint64_t Min, uint64_t Max) {
  Expected<uint64_t> Value = envUnsignedChecked(Name, Default, Min, Max);
  if (!Value) {
    std::fprintf(stderr, "[dynace] fatal: %s\n",
                 Value.status().message().c_str());
    std::exit(2);
  }
  return *Value;
}

std::optional<double> dynace::parseUnsignedDouble(const char *Text) {
  if (!Text || *Text == '\0')
    return std::nullopt;
  // Accept only digits and at most one interior '.': rejects signs,
  // exponents ("1e3"), hex floats, "nan"/"inf", and trailing characters.
  bool SeenDot = false, SeenDigit = false;
  for (const char *P = Text; *P; ++P) {
    if (*P >= '0' && *P <= '9') {
      SeenDigit = true;
    } else if (*P == '.' && !SeenDot) {
      SeenDot = true;
    } else {
      return std::nullopt;
    }
  }
  if (!SeenDigit)
    return std::nullopt;
  double Value = 0.0;
  const char *End = Text + std::strlen(Text);
  std::from_chars_result R = std::from_chars(Text, End, Value);
  if (R.ec != std::errc() || R.ptr != End)
    return std::nullopt;
  return Value;
}

Expected<double> dynace::envDoubleChecked(const char *Name, double Default,
                                          double Min, double Max) {
  const char *Text = std::getenv(Name);
  if (!Text || *Text == '\0')
    return Default;
  std::optional<double> Value = parseUnsignedDouble(Text);
  if (!Value) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s='%s' is not a valid non-negative decimal number "
                  "(digits and at most one '.', no sign/exponent/suffix)",
                  Name, Text);
    return Status::error(ErrorCode::InvalidInput, Buf);
  }
  if (*Value < Min || *Value > Max) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s=%g is out of range; expected a value in [%g, %g]",
                  Name, *Value, Min, Max);
    return Status::error(ErrorCode::InvalidInput, Buf);
  }
  return *Value;
}

double dynace::envDoubleOr(const char *Name, double Default, double Min,
                           double Max) {
  Expected<double> Value = envDoubleChecked(Name, Default, Min, Max);
  if (!Value) {
    std::fprintf(stderr, "[dynace] fatal: %s\n",
                 Value.status().message().c_str());
    std::exit(2);
  }
  return *Value;
}

std::string dynace::envString(const char *Name, const std::string &Default) {
  const char *Text = std::getenv(Name);
  if (!Text || *Text == '\0')
    return Default;
  return Text;
}

Expected<bool> dynace::envBoolChecked(const char *Name, bool Default) {
  const char *Text = std::getenv(Name);
  if (!Text || *Text == '\0')
    return Default;
  if (!std::strcmp(Text, "1") || !std::strcmp(Text, "true") ||
      !std::strcmp(Text, "on"))
    return true;
  if (!std::strcmp(Text, "0") || !std::strcmp(Text, "false") ||
      !std::strcmp(Text, "off"))
    return false;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%s='%s' is not a valid boolean; expected one of "
                "0/false/off or 1/true/on",
                Name, Text);
  return Status::error(ErrorCode::InvalidInput, Buf);
}

bool dynace::envBoolOr(const char *Name, bool Default) {
  Expected<bool> Value = envBoolChecked(Name, Default);
  if (!Value) {
    std::fprintf(stderr, "[dynace] fatal: %s\n",
                 Value.status().message().c_str());
    std::exit(2);
  }
  return *Value;
}
