//===- support/ThreadSafety.h - Clang thread-safety capabilities -*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time lock discipline for the concurrent pipeline (DESIGN.md §13).
///
/// Clang's \c -Wthread-safety analysis proves, per translation unit, that
/// every access to a \c GUARDED_BY member happens with the named mutex
/// held. The TSan gate only checks the interleavings a given run happens
/// to produce; the static analysis checks *all* call paths, every build.
///
/// Two layers live here:
///
///  * the raw annotation macros (\c CAPABILITY, \c GUARDED_BY, \c REQUIRES,
///    \c ACQUIRE / \c RELEASE, ...), expanding to Clang attributes when the
///    compiler supports them and to nothing otherwise (GCC builds are
///    unaffected);
///  * annotated capability types — \c Mutex and the scoped \c MutexLock —
///    wrapping \c std::mutex. The standard mutex types carry no
///    annotations under libstdc++, so locking through them is invisible to
///    the analysis; the annotated components (ThreadPool, TraceCollector,
///    MetricsRegistry, the ResultCache key registry) lock exclusively
///    through these wrappers.
///
/// Condition variables: pair \c Mutex with \c std::condition_variable_any
/// and call \c wait(MutexLock&) in a hand-written predicate loop. The
/// analysis cannot see the unlock/relock inside \c wait(), but the
/// capability is held both before and after the call, so the checked state
/// stays consistent (MutexLock's BasicLockable surface is excluded from
/// analysis for exactly this reason).
///
/// The negative compile test (tests/thread_safety_negative.cpp, driven by
/// scripts/check_thread_safety.sh) pins that an unannotated access really
/// does fail \c -Werror=thread-safety-analysis under Clang.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_THREADSAFETY_H
#define DYNACE_SUPPORT_THREADSAFETY_H

#include <mutex>

// Attribute detection: Clang defines __has_attribute and implements the
// capability attributes; GCC reports 0 (or lacks __has_attribute), so every
// macro below compiles away there.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DYNACE_TSA(x) __attribute__((x))
#endif
#endif
#ifndef DYNACE_TSA
#define DYNACE_TSA(x) // no-op outside Clang
#endif

/// Marks a type as a capability (a lock) the analysis can track.
#define CAPABILITY(x) DYNACE_TSA(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY DYNACE_TSA(scoped_lockable)

/// Declares that a member may only be read or written while holding \p x.
#define GUARDED_BY(x) DYNACE_TSA(guarded_by(x))

/// Declares that the pointed-to data (not the pointer) is guarded by \p x.
#define PT_GUARDED_BY(x) DYNACE_TSA(pt_guarded_by(x))

/// Declares that callers must hold the given capabilities.
#define REQUIRES(...) DYNACE_TSA(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the given capabilities.
#define ACQUIRE(...) DYNACE_TSA(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the given capabilities.
#define RELEASE(...) DYNACE_TSA(release_capability(__VA_ARGS__))

/// Declares that a function returns \p ret and acquires on that outcome.
#define TRY_ACQUIRE(...) DYNACE_TSA(try_acquire_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the given capabilities
/// (non-reentrancy).
#define EXCLUDES(...) DYNACE_TSA(locks_excluded(__VA_ARGS__))

/// Declares the capability returned by a getter.
#define RETURN_CAPABILITY(x) DYNACE_TSA(lock_returned(x))

/// Opts a function out of the analysis (used sparingly, with a comment).
#define NO_THREAD_SAFETY_ANALYSIS DYNACE_TSA(no_thread_safety_analysis)

namespace dynace {

/// An annotated \c std::mutex: the capability type the analysis tracks.
/// Lock through MutexLock (or lock()/unlock() in annotated functions).
class CAPABILITY("mutex") Mutex {
public:
  void lock() ACQUIRE() { M.lock(); }
  void unlock() RELEASE() { M.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return M.try_lock(); }

private:
  std::mutex M;
};

/// Scoped holder of a Mutex (the annotated std::lock_guard). Also models
/// BasicLockable so \c std::condition_variable_any can wait on it; those
/// entry points are excluded from analysis (see \file comment).
class SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) ACQUIRE(M) : M(M) { M.lock(); }
  ~MutexLock() RELEASE() { M.unlock(); }

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  // BasicLockable surface for condition_variable_any::wait. Only the
  // condition variable calls these; the capability is held on both sides
  // of wait(), so hiding the transient unlock keeps the analysis sound.
  void lock() NO_THREAD_SAFETY_ANALYSIS { M.lock(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { M.unlock(); }

private:
  Mutex &M;
};

} // namespace dynace

#endif // DYNACE_SUPPORT_THREADSAFETY_H
