//===- support/Statistics.cpp ---------------------------------------------==//

#include "support/Statistics.h"

using namespace dynace;

void RunningStat::merge(const RunningStat &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  uint64_t Total = Count + Other.Count;
  double Delta = Other.Mean - Mean;
  double TotalD = static_cast<double>(Total);
  Mean += Delta * (static_cast<double>(Other.Count) / TotalD);
  M2 += Other.M2 + Delta * Delta *
                       (static_cast<double>(Count) *
                        static_cast<double>(Other.Count) / TotalD);
  Count = Total;
}

double dynace::meanOf(const std::vector<double> &Values) {
  RunningStat S;
  for (double V : Values)
    S.add(V);
  return S.mean();
}

double dynace::covOf(const std::vector<double> &Values) {
  RunningStat S;
  for (double V : Values)
    S.add(V);
  return S.cov();
}

double dynace::weightedMean(const std::vector<double> &Values,
                            const std::vector<double> &Weights) {
  assert(Values.size() == Weights.size() &&
         "weightedMean requires matched value/weight vectors");
  double Num = 0.0, Den = 0.0;
  for (size_t I = 0, E = Values.size(); I != E; ++I) {
    Num += Values[I] * Weights[I];
    Den += Weights[I];
  }
  if (Den == 0.0)
    return 0.0;
  return Num / Den;
}
