//===- support/Status.cpp -------------------------------------------------==//

#include "support/Status.h"

using namespace dynace;

const char *dynace::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::InvalidInput:
    return "invalid-input";
  case ErrorCode::Trap:
    return "trap";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::Timeout:
    return "timeout";
  case ErrorCode::Injected:
    return "injected";
  }
  return "?";
}
