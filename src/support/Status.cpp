//===- support/Status.cpp -------------------------------------------------==//

#include "support/Status.h"

#include <cstdio>
#include <cstdlib>

using namespace dynace;

void dynace::fatalError(const char *What, const Status &Failure) {
  std::fprintf(stderr, "[dynace] fatal: %s: %s\n", What,
               Failure.toString().c_str());
  std::exit(2);
}

const char *dynace::errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::InvalidInput:
    return "invalid-input";
  case ErrorCode::Trap:
    return "trap";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::Timeout:
    return "timeout";
  case ErrorCode::Injected:
    return "injected";
  case ErrorCode::Unavailable:
    return "unavailable";
  }
  return "?";
}
