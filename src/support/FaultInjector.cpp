//===- support/FaultInjector.cpp ------------------------------------------==//

#include "support/FaultInjector.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace dynace;

const char *dynace::faultSiteName(FaultSite Site) {
  switch (Site) {
  case FaultSite::CacheRead:
    return "cache.read";
  case FaultSite::CacheWrite:
    return "cache.write";
  case FaultSite::CacheRename:
    return "cache.rename";
  case FaultSite::RunnerWorker:
    return "runner.worker";
  case FaultSite::RpcSend:
    return "rpc.send";
  case FaultSite::RpcRecv:
    return "rpc.recv";
  case FaultSite::WorkerCrash:
    return "worker.crash";
  case FaultSite::WorkerStall:
    return "worker.stall";
  }
  return "?";
}

namespace {

/// \returns the site spelled \p Name, or nullopt.
std::optional<FaultSite> siteByName(const std::string &Name) {
  for (unsigned I = 0; I != kNumFaultSites; ++I) {
    FaultSite S = static_cast<FaultSite>(I);
    if (Name == faultSiteName(S))
      return S;
  }
  return std::nullopt;
}

} // namespace

FaultInjector &FaultInjector::instance() {
  static FaultInjector *Inj = [] {
    auto *I = new FaultInjector();
    if (Status S = I->configureFromEnv(); !S) {
      std::fprintf(stderr, "[dynace] fatal: DYNACE_FAULT_SPEC: %s\n",
                   S.toString().c_str());
      std::exit(2);
    }
    return I;
  }();
  return *Inj;
}

Status FaultInjector::configureFromEnv() {
  return configure(envString("DYNACE_FAULT_SPEC").c_str());
}

Status FaultInjector::configure(const char *Spec) {
  // Parse into a scratch rule set first; a malformed spec must not clear
  // or half-install a plan.
  Rule Parsed[kNumFaultSites];
  bool Any = false;

  std::string Text = Spec ? Spec : "";
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find(',', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Entry = Text.substr(Pos, End - Pos);
    Pos = End + 1;

    size_t C1 = Entry.find(':');
    size_t C2 = C1 == std::string::npos ? std::string::npos
                                        : Entry.find(':', C1 + 1);
    if (C1 == std::string::npos || C2 == std::string::npos ||
        Entry.find(':', C2 + 1) != std::string::npos)
      return Status::error(ErrorCode::InvalidInput,
                           "'" + Entry +
                               "' is not of the form <site>:<rate>:<seed>");

    std::string SiteName = Entry.substr(0, C1);
    std::optional<FaultSite> Site = siteByName(SiteName);
    if (!Site)
      return Status::error(ErrorCode::InvalidInput,
                           "unknown fault site '" + SiteName +
                               "' (sites: cache.read, cache.write, "
                               "cache.rename, runner.worker, rpc.send, "
                               "rpc.recv, worker.crash, worker.stall)");

    std::optional<uint64_t> Rate =
        parseUnsignedInt(Entry.substr(C1 + 1, C2 - C1 - 1).c_str());
    if (!Rate || *Rate == 0)
      return Status::error(ErrorCode::InvalidInput,
                           "'" + Entry +
                               "': rate must be a positive integer");
    std::optional<uint64_t> Seed =
        parseUnsignedInt(Entry.substr(C2 + 1).c_str());
    if (!Seed)
      return Status::error(ErrorCode::InvalidInput,
                           "'" + Entry +
                               "': seed must be a non-negative integer");

    Rule &R = Parsed[static_cast<unsigned>(*Site)];
    if (R.Active)
      return Status::error(ErrorCode::InvalidInput,
                           "duplicate rule for site '" + SiteName + "'");
    R = {true, *Rate, *Seed};
    Any = true;
  }

  // Publish: configuration must not race with arming (it runs at process
  // startup or between test grids). The release store on Enabled orders
  // the rule writes before any reader that observes the new flag.
  Enabled.store(false, std::memory_order_release);
  for (unsigned I = 0; I != kNumFaultSites; ++I) {
    Rules[I] = Parsed[I];
    Arms[I].store(0, std::memory_order_relaxed);
    Fired[I].store(0, std::memory_order_relaxed);
  }
  Enabled.store(Any, std::memory_order_release);
  return Status();
}

bool FaultInjector::shouldFail(FaultSite Site) {
  if (!Enabled.load(std::memory_order_acquire))
    return false;
  unsigned I = static_cast<unsigned>(Site);
  uint64_t N = Arms[I].fetch_add(1, std::memory_order_relaxed);
  const Rule &R = Rules[I];
  if (!R.Active || (N + R.Seed) % R.Rate != 0)
    return false;
  Fired[I].fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::makeError(FaultSite Site) {
  return Status::error(ErrorCode::Injected,
                       std::string("injected fault at site ") +
                           faultSiteName(Site));
}

uint64_t FaultInjector::armCount(FaultSite Site) const {
  return Arms[static_cast<unsigned>(Site)].load(std::memory_order_relaxed);
}

uint64_t FaultInjector::firedCount(FaultSite Site) const {
  return Fired[static_cast<unsigned>(Site)].load(std::memory_order_relaxed);
}
