//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"

#include <algorithm>

using namespace dynace;

void TextTable::print(std::ostream &OS, const std::string &Title) const {
  // Compute column widths over header and all rows.
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());
  if (NumCols == 0)
    return;

  std::vector<size_t> Widths(NumCols, 0);
  auto Account = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0, E = Row.size(); I != E; ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Account(Header);
  for (const auto &Row : Rows)
    Account(Row);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  auto PrintRule = [&] {
    OS << std::string(TotalWidth, '-') << '\n';
  };
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I != NumCols; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      if (I == 0) {
        OS << Cell << std::string(Widths[I] - Cell.size() + 2, ' ');
        continue;
      }
      OS << std::string(Widths[I] - Cell.size(), ' ') << Cell << "  ";
    }
    OS << '\n';
  };

  if (!Title.empty()) {
    OS << Title << '\n';
    PrintRule();
  }
  if (!Header.empty()) {
    PrintRow(Header);
    PrintRule();
  }
  for (size_t I = 0, E = Rows.size(); I != E; ++I) {
    if (std::find(Separators.begin(), Separators.end(), I) !=
        Separators.end())
      PrintRule();
    PrintRow(Rows[I]);
  }
  PrintRule();
}
