//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, spec-driven fault injection for exercising the recovery
/// paths of the experiment pipeline on demand. Production code arms named
/// sites (\c shouldFail()); whether an arming actually fails is decided by
/// a fault plan parsed from the DYNACE_FAULT_SPEC environment variable:
///
///   DYNACE_FAULT_SPEC=<site>:<rate>:<seed>[,<site>:<rate>:<seed>...]
///
/// The \p N-th arming of a site (N counts from 0, process-wide) fails iff
/// `(N + seed) % rate == 0`. The rule is a pure function of the arm index,
/// so a fault plan is exactly reproducible run to run:
///
///  * rate 1 — every arming fails (exhausts retries: tests graceful
///    degradation);
///  * rate >= 2 — two consecutive armings never both fail, so one retry is
///    guaranteed to get past the site (tests retry + bit-identical
///    results); seed selects which armings fail.
///
/// Sites: `cache.read`, `cache.write`, `cache.rename` (ResultCache I/O),
/// `runner.worker` (ExperimentRunner per-cell worker entry), and the
/// distributed-service sites `rpc.send` / `rpc.recv` (serve/Wire framed
/// transport), `worker.crash` (serve worker exits mid-cell) and
/// `worker.stall` (a cell attempt sleeps DYNACE_STALL_MS before
/// simulating, exercising lease expiry and the per-attempt watchdog).
/// Multiple comma-separated clauses may arm different sites simultaneously
/// (e.g. transport + cache chaos in one run); duplicate sites are rejected
/// with a clear InvalidInput error, as are malformed specs (fatal at
/// process startup, same strictness as support/Env).
///
/// With no spec configured, \c shouldFail() is a single relaxed atomic
/// load — the injector costs nothing on the paths it guards.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_FAULTINJECTOR_H
#define DYNACE_SUPPORT_FAULTINJECTOR_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>

namespace dynace {

/// The named injection sites wired into the pipeline.
enum class FaultSite : uint8_t {
  CacheRead,    ///< ResultCache loadResult entry.
  CacheWrite,   ///< ResultCache saveResult temp-file write.
  CacheRename,  ///< ResultCache saveResult atomic publish rename.
  RunnerWorker, ///< ExperimentRunner per-(benchmark, scheme) worker entry.
  RpcSend,      ///< serve/Wire sendFrame entry (transport send drops).
  RpcRecv,      ///< serve/Wire recvFrame entry (transport receive drops).
  WorkerCrash,  ///< serve worker cell receipt: the worker process exits.
  WorkerStall,  ///< per-attempt stall (sleep DYNACE_STALL_MS) before a
                ///< simulation attempt — straggler / watchdog exercise.
};

/// Number of distinct injection sites.
inline constexpr unsigned kNumFaultSites = 8;

/// \returns the spec/spelling name of \p Site (e.g. "cache.read").
const char *faultSiteName(FaultSite Site);

/// Process-wide deterministic fault injector.
///
/// All members are thread-safe: configuration swaps an immutable plan
/// under a mutex; arming uses per-site atomic counters.
class FaultInjector {
public:
  /// \returns the singleton, configured from DYNACE_FAULT_SPEC on first
  ///          use (a malformed spec is fatal, exit code 2).
  static FaultInjector &instance();

  /// Parses and installs \p Spec (null or empty disables injection).
  /// Counters are reset. Exposed for tests; production configuration goes
  /// through the environment.
  /// \returns InvalidInput when the spec is malformed (the previous plan
  ///          stays installed).
  Status configure(const char *Spec);

  /// Re-reads DYNACE_FAULT_SPEC and installs it.
  /// \returns the configure() status.
  Status configureFromEnv();

  /// Arms \p Site: bumps its arm counter and consults the plan.
  /// \returns true when this arming must fail.
  bool shouldFail(FaultSite Site);

  /// \returns a ready-made Injected error naming \p Site.
  static Status makeError(FaultSite Site);

  /// \returns how many times \p Site was armed since the last configure().
  uint64_t armCount(FaultSite Site) const;

  /// \returns how many armings of \p Site fired since the last
  ///          configure().
  uint64_t firedCount(FaultSite Site) const;

  /// True when any site has a rule installed.
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

private:
  FaultInjector() = default;

  struct Rule {
    bool Active = false;
    uint64_t Rate = 0;
    uint64_t Seed = 0;
  };

  std::atomic<bool> Enabled{false};
  Rule Rules[kNumFaultSites];
  std::atomic<uint64_t> Arms[kNumFaultSites]{};
  std::atomic<uint64_t> Fired[kNumFaultSites]{};
};

} // namespace dynace

#endif // DYNACE_SUPPORT_FAULTINJECTOR_H
