//===- support/Status.h - Structured error handling -------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style structured error handling without exceptions: \c Status for
/// operations that either succeed or fail with a classified error, and
/// \c Expected<T> for operations that either produce a value or fail.
///
/// Errors carry an \c ErrorCode from a small fixed taxonomy plus a
/// human-readable message. The taxonomy is what the fault-tolerant
/// experiment pipeline dispatches on — e.g. a \c Timeout or \c Injected
/// cell is retried, while the error text only ever reaches logs and the
/// FAILED(<code>) cells of partially degraded report tables.
///
/// A default-constructed Status is success; \c Status::error() builds a
/// failure. Both Status and Expected convert to bool contextually, true
/// meaning success, so call sites read like the bool-returning APIs they
/// replaced:
///
/// \code
///   if (Status S = Prog.finalize(); !S)
///     std::fprintf(stderr, "%s\n", S.toString().c_str());
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_STATUS_H
#define DYNACE_SUPPORT_STATUS_H

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace dynace {

/// The project-wide error taxonomy. Every structured failure is one of
/// these; recovery policy (retry, degrade, abort) keys off the code, never
/// off message text.
enum class ErrorCode : uint8_t {
  InvalidInput, ///< Malformed program, option, spec, or serialized entry.
  Trap,         ///< The interpreter trapped (invalid opcode, div-by-zero...).
  IoError,      ///< A filesystem operation failed (open/write/rename).
  Timeout,      ///< A watchdog deadline expired before the run finished.
  Injected,     ///< A deterministic FaultInjector site fired.
  Unavailable,  ///< A peer process is gone (worker crash, closed socket,
                ///< unreachable daemon) — retryable against a fresh peer.
};

/// \returns the stable short name of \p Code ("invalid-input", "trap",
///          "io-error", "timeout", "injected", "unavailable") — used in
///          FAILED(<code>) report cells and log lines.
const char *errorCodeName(ErrorCode Code);

class Status;

/// Terminates the process over an unrecoverable \p Failure, printing the
/// structured "[dynace] fatal: <what>: <code>: <message>" diagnostic first
/// (exit code 2, matching the strict environment-variable readers). The
/// single sanctioned process-abort path outside the VM's trap machinery —
/// scripts/check_lint.sh bans raw abort() everywhere else.
[[noreturn]] void fatalError(const char *What, const Status &Failure);

/// Success, or a classified error with a message. Cheap to return by value
/// (success carries no allocation).
class [[nodiscard]] Status {
public:
  /// Success.
  Status() = default;

  /// Builds a failure carrying \p Code and \p Message.
  /// \returns the error status.
  static Status error(ErrorCode Code, std::string Message) {
    Status S;
    S.Err.emplace(ErrorState{Code, std::move(Message)});
    return S;
  }

  /// \returns true when this status represents success.
  bool ok() const { return !Err.has_value(); }

  /// Contextual conversion: true = success (mirrors the bool APIs these
  /// statuses replaced).
  explicit operator bool() const { return ok(); }

  /// \returns the error code; must not be called on a success status.
  ErrorCode code() const {
    assert(!ok() && "code() on a success Status");
    return Err->Code;
  }

  /// \returns the error message ("" for success).
  const std::string &message() const {
    static const std::string Empty;
    return ok() ? Empty : Err->Message;
  }

  /// \returns "ok" or "<code>: <message>".
  std::string toString() const {
    if (ok())
      return "ok";
    return std::string(errorCodeName(Err->Code)) + ": " + Err->Message;
  }

private:
  struct ErrorState {
    ErrorCode Code;
    std::string Message;
  };
  std::optional<ErrorState> Err;
};

/// Either a value of type \p T or an error Status. Implicitly constructible
/// from both, so functions can `return Value;` and
/// `return Status::error(...);` symmetrically.
template <typename T> class [[nodiscard]] Expected {
public:
  /// Success carrying \p Value.
  Expected(T Value) : Value(std::move(Value)) {}

  /// Failure; \p Error must not be a success status.
  Expected(Status Error) : Err(std::move(Error)) {
    assert(!Err.ok() && "Expected constructed from a success Status");
  }

  /// \returns true when a value is present.
  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Value access; must not be called on an error.
  T &get() {
    assert(ok() && "get() on an errored Expected");
    return *Value;
  }
  const T &get() const {
    assert(ok() && "get() on an errored Expected");
    return *Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// \returns the carried error; must not be called on a success.
  const Status &status() const {
    assert(!ok() && "status() on a valued Expected");
    return Err;
  }

  /// Moves the value out; must not be called on an error.
  /// \returns the value.
  T take() {
    assert(ok() && "take() on an errored Expected");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace dynace

#endif // DYNACE_SUPPORT_STATUS_H
