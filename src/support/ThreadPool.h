//===- support/ThreadPool.h - Fixed-size worker thread pool -----*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool used by the experiment pipeline to fan the
/// (benchmark × scheme) simulation grid out across cores. Tasks are
/// submitted as callables and their results retrieved through
/// \c std::future, so an exception thrown inside a task is captured and
/// rethrown at the caller's \c get() — never inside a worker thread.
///
/// The pool is deliberately minimal: a locked FIFO queue, no work
/// stealing, no task priorities. Simulation tasks run for seconds each, so
/// queue overhead is irrelevant; what matters is that a pool of size 1
/// degenerates to strict submission-order execution (used to verify that
/// parallel and serial runs produce bit-identical results).
///
/// Lock discipline is stated in the types (support/ThreadSafety.h): every
/// queue/bookkeeping member is GUARDED_BY(PoolMutex), so an access outside
/// the lock fails \c -Wthread-safety under Clang at compile time instead of
/// waiting for TSan to catch the interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_THREADPOOL_H
#define DYNACE_SUPPORT_THREADPOOL_H

#include "support/ThreadSafety.h"

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace dynace {

/// Fixed-size FIFO thread pool.
///
/// Threads are spawned in the constructor and joined in the destructor;
/// the destructor drains the queue first, so every submitted task runs
/// exactly once.
class ThreadPool {
public:
  /// Spawns \p Threads workers; a count of 0 is clamped to 1.
  explicit ThreadPool(unsigned Threads);

  /// Waits for queued tasks to finish, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p F for execution on some worker.
  ///
  /// \returns a future for F's result; if F throws, the exception is
  ///          rethrown from \c get().
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    {
      MutexLock Lock(PoolMutex);
      Queue.push([Task] { (*Task)(); });
    }
    WakeWorker.notify_one();
    return Future;
  }

  /// Blocks until the queue is empty and no task is executing.
  void wait();

  /// Number of worker threads.
  /// \returns the thread count fixed at construction (>= 1).
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Worker count for experiment pipelines: the DYNACE_JOBS environment
  /// variable when set to a positive integer, otherwise
  /// \c std::thread::hardware_concurrency() (clamped to >= 1).
  /// \returns the default degree of parallelism (>= 1).
  static unsigned defaultThreadCount();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  Mutex PoolMutex;
  std::queue<std::function<void()>> Queue GUARDED_BY(PoolMutex);
  /// _any variants: they wait on the annotated MutexLock (whose transient
  /// unlock inside wait() is excluded from analysis — see ThreadSafety.h).
  std::condition_variable_any WakeWorker;
  std::condition_variable_any Idle;
  unsigned Busy GUARDED_BY(PoolMutex) = 0;
  bool ShuttingDown GUARDED_BY(PoolMutex) = false;
};

} // namespace dynace

#endif // DYNACE_SUPPORT_THREADPOOL_H
