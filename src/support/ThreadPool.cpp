//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include "support/Env.h"

using namespace dynace;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock Lock(PoolMutex);
    ShuttingDown = true;
  }
  WakeWorker.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      MutexLock Lock(PoolMutex);
      // Hand-written predicate loop: the capability is held on both sides
      // of wait(), so the guarded members are checked accesses throughout.
      while (!ShuttingDown && Queue.empty())
        WakeWorker.wait(Lock);
      if (Queue.empty()) // ShuttingDown and drained.
        return;
      Task = std::move(Queue.front());
      Queue.pop();
      ++Busy;
    }
    Task(); // Exceptions are captured by the packaged_task wrapper.
    {
      MutexLock Lock(PoolMutex);
      --Busy;
    }
    Idle.notify_all();
  }
}

void ThreadPool::wait() {
  MutexLock Lock(PoolMutex);
  while (!Queue.empty() || Busy != 0)
    Idle.wait(Lock);
}

unsigned ThreadPool::defaultThreadCount() {
  // Strictly validated: a malformed or out-of-range DYNACE_JOBS is a fatal
  // error, not a silent fallback (Default=0 marks "unset").
  uint64_t Jobs = envUnsignedOr("DYNACE_JOBS", 0, 1, 4096);
  if (Jobs)
    return static_cast<unsigned>(Jobs);
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}
