//===- support/ThreadPool.cpp ---------------------------------------------==//

#include "support/ThreadPool.h"

#include <cstdlib>

using namespace dynace;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorker.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorker.wait(Lock,
                      [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) // ShuttingDown and drained.
        return;
      Task = std::move(Queue.front());
      Queue.pop();
      ++Busy;
    }
    Task(); // Exceptions are captured by the packaged_task wrapper.
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Busy;
    }
    Idle.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Idle.wait(Lock, [this] { return Queue.empty() && Busy == 0; });
}

unsigned ThreadPool::defaultThreadCount() {
  if (const char *Jobs = std::getenv("DYNACE_JOBS")) {
    long N = std::strtol(Jobs, nullptr, 10);
    if (N > 0)
      return static_cast<unsigned>(N);
  }
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}
