//===- support/Statistics.h - Streaming statistics --------------*- C++ -*-==//
//
// Part of the DynACE project: reproduction of Hu, Valluri & John,
// "Effective Adaptive Computing Environment Management via Dynamic
// Optimization", CGO 2005.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming (Welford) statistics used throughout the evaluation: the paper
/// reports means, coefficients of variation (CoV = stddev / mean), and
/// weighted shares.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_STATISTICS_H
#define DYNACE_SUPPORT_STATISTICS_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dynace {

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams of per-invocation IPC samples; used
/// to compute the per-hotspot and inter-hotspot IPC CoVs of Table 5.
class RunningStat {
public:
  /// Adds one observation.
  void add(double X) {
    ++Count;
    double Delta = X - Mean;
    Mean += Delta / static_cast<double>(Count);
    M2 += Delta * (X - Mean);
  }

  /// \returns the number of observations so far.
  uint64_t count() const { return Count; }

  /// \returns the sample mean; 0 when empty.
  double mean() const { return Count ? Mean : 0.0; }

  /// \returns the population variance; 0 with fewer than two observations.
  double variance() const {
    if (Count < 2)
      return 0.0;
    return M2 / static_cast<double>(Count);
  }

  /// \returns the population standard deviation.
  double stddev() const { return std::sqrt(variance()); }

  /// \returns the coefficient of variation (stddev / mean); 0 when the
  ///          mean is 0.
  double cov() const {
    double M = mean();
    if (M == 0.0)
      return 0.0;
    return stddev() / std::fabs(M);
  }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStat &Other);

  /// Resets to the empty state.
  void clear() {
    Count = 0;
    Mean = 0.0;
    M2 = 0.0;
  }

private:
  uint64_t Count = 0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Computes the mean of a vector.
/// \returns the mean; 0 when \p Values is empty.
double meanOf(const std::vector<double> &Values);

/// Computes the population CoV of a vector.
/// \returns the CoV; 0 when \p Values is empty or zero-mean.
double covOf(const std::vector<double> &Values);

/// Computes a weighted mean, used for execution-weighted averages across
/// benchmarks.
/// \returns sum(V_i * W_i) / sum(W_i); 0 when the total weight is 0.
double weightedMean(const std::vector<double> &Values,
                    const std::vector<double> &Weights);

} // namespace dynace

#endif // DYNACE_SUPPORT_STATISTICS_H
