//===- support/Table.h - Paper-style table printer --------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width text table used by the benchmark harnesses to print rows in
/// the same layout as the paper's tables (one column per benchmark, one row
/// per metric, or vice versa).
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_TABLE_H
#define DYNACE_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace dynace {

/// Accumulates rows of string cells and prints them column-aligned.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells) { Header = std::move(Cells); }

  /// Appends a data row. Rows may have differing lengths; short rows leave
  /// trailing columns blank.
  void addRow(std::vector<std::string> Cells) {
    Rows.push_back(std::move(Cells));
  }

  /// Appends a horizontal separator at the current position.
  void addSeparator() { Separators.push_back(Rows.size()); }

  /// Renders the table. Columns are sized to their widest cell; the first
  /// column is left-aligned, the rest right-aligned (matching the numeric
  /// layout of the paper's tables).
  void print(std::ostream &OS, const std::string &Title = "") const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
  std::vector<size_t> Separators;
};

} // namespace dynace

#endif // DYNACE_SUPPORT_TABLE_H
