//===- support/Format.h - Text formatting helpers ---------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers that render numbers the way the paper's tables do:
/// percentages ("99.03%"), thousands-separated counts ("81,645") and
/// scientific counts ("9.83E+09").
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_FORMAT_H
#define DYNACE_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace dynace {

/// Formats a ratio in [0, 1] as a percent string.
/// \returns e.g. "99.03%" for 0.9903 at the default two decimals.
std::string formatPercent(double Ratio, int Decimals = 2);

/// Formats a count with thousands separators.
/// \returns e.g. "81,645" for 81645.
std::string formatCount(uint64_t Value);

/// Formats a count in the paper's scientific style.
/// \returns e.g. "9.83E+09" at the default two decimals.
std::string formatScientific(double Value, int Decimals = 2);

/// Formats a double with fixed decimals.
/// \returns e.g. "1.50" for 1.5 at the default two decimals.
std::string formatFixed(double Value, int Decimals = 2);

} // namespace dynace

#endif // DYNACE_SUPPORT_FORMAT_H
