//===- support/Random.h - Deterministic RNG ---------------------*- C++ -*-==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) plus sampling helpers.
///
/// The synthetic SPECjvm98-like workloads must be reproducible run to run so
/// that the baseline, BBV and hotspot simulations all see the *same* dynamic
/// instruction stream; std::mt19937 would also work but SplitMix64 is
/// smaller, faster and trivially seedable per benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef DYNACE_SUPPORT_RANDOM_H
#define DYNACE_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dynace {

/// SplitMix64 pseudo-random generator. Deterministic for a given seed.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Advances the generator.
  /// \returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// \returns a uniform integer in [0, \p Bound); Bound must be > 0.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Multiply-shift rejection-free mapping; bias is negligible for our
    // bounds (all far below 2^32).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a uniform integer in [\p Lo, \p Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "nextInRange requires Lo <= Hi");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// \returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// \returns a Bernoulli draw: true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

/// Samples an index from an unnormalized discrete distribution.
///
/// \returns an index I with probability Weights[I] / sum(Weights).
/// Weights must be non-empty with a positive sum.
inline size_t sampleDiscrete(SplitMix64 &Rng,
                             const std::vector<double> &Weights) {
  assert(!Weights.empty() && "sampleDiscrete requires weights");
  double Total = 0.0;
  for (double W : Weights)
    Total += W;
  assert(Total > 0.0 && "sampleDiscrete requires a positive total weight");
  double X = Rng.nextDouble() * Total;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    X -= Weights[I];
    if (X <= 0.0)
      return I;
  }
  return Weights.size() - 1;
}

/// Builds Zipf-like weights for \p N items.
///
/// Used by the workload generator to skew invocation frequency toward a few
/// dominant methods, matching the hotspot concentration the paper relies on
/// (e.g. in db, fewer than 10 procedures cause >95% of data misses).
/// \returns the unnormalized weights W_i = 1 / (i+1)^S.
inline std::vector<double> zipfWeights(size_t N, double S) {
  std::vector<double> W;
  W.reserve(N);
  for (size_t I = 0; I != N; ++I) {
    double Rank = static_cast<double>(I + 1);
    W.push_back(1.0 / std::pow(Rank, S));
  }
  return W;
}

/// Fraction of the Zipf(\p Theta) probability mass carried by the \p K
/// highest-ranked of \p N items: H_K(Theta) / H_N(Theta) with the
/// generalized harmonic H_M(s) = sum_{i=1..M} 1/i^s. The closed form the
/// distribution tests compare empirical rank frequencies against, and the
/// knob-to-hardware translation the workload generator uses to size its
/// skewed data-access ladder.
/// \returns the mass fraction in (0, 1]; 1 when K >= N, K/N when Theta==0.
inline double zipfMassFraction(size_t N, size_t K, double Theta) {
  assert(N > 0 && "zipfMassFraction requires items");
  if (K >= N)
    return 1.0;
  double Head = 0.0, Total = 0.0;
  for (size_t I = 0; I != N; ++I) {
    double W = 1.0 / std::pow(static_cast<double>(I + 1), Theta);
    Total += W;
    if (I < K)
      Head += W;
  }
  return Head / Total;
}

/// Rank sampler over a fixed Zipf(\p Theta) distribution.
///
/// Precomputes the weight vector once; each draw consumes exactly one
/// uniform double from the caller's SplitMix64 and walks the unnormalized
/// weights in the same order (and with the same floating-point
/// associations) as sampleDiscrete(), so replacing a
/// sampleDiscrete(Rng, zipfWeights(N, S)) call site with a ZipfSampler
/// changes neither the draw sequence nor the sampled ranks — generated
/// programs stay bit-identical.
class ZipfSampler {
public:
  /// \param N number of ranks (> 0); \param Theta skew exponent (>= 0;
  ///        0 degenerates to the uniform distribution).
  ZipfSampler(size_t N, double Theta)
      : Weights(zipfWeights(N, Theta)), Theta(Theta) {
    for (double W : Weights)
      Total += W;
  }

  /// Draws one rank using (and advancing) \p Rng.
  /// \returns a rank in [0, N) with probability proportional to
  ///          1/(rank+1)^Theta.
  size_t next(SplitMix64 &Rng) const {
    double X = Rng.nextDouble() * Total;
    for (size_t I = 0, E = Weights.size(); I != E; ++I) {
      X -= Weights[I];
      if (X <= 0.0)
        return I;
    }
    return Weights.size() - 1;
  }

  size_t numRanks() const { return Weights.size(); }
  double theta() const { return Theta; }

private:
  std::vector<double> Weights;
  double Total = 0.0;
  double Theta;
};

/// Self-seeded convenience wrapper over ZipfSampler (the DiStore
/// ZipfGenerator idiom): owns its SplitMix64 so callers that do not manage
/// a shared deterministic stream — tests, standalone tools — can draw
/// Zipf ranks from (range, theta, seed) alone. Deterministic per seed.
class ZipfGenerator {
public:
  ZipfGenerator(size_t Range, double Theta, uint64_t Seed = 0)
      : Sampler(Range, Theta), Rng(Seed * 0x9e3779b97f4a7c15ull + 1) {}

  /// \returns the next rank in [0, Range).
  size_t next() { return Sampler.next(Rng); }

private:
  ZipfSampler Sampler;
  SplitMix64 Rng;
};

} // namespace dynace

#endif // DYNACE_SUPPORT_RANDOM_H
