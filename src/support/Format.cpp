//===- support/Format.cpp -------------------------------------------------==//

#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace dynace;

std::string dynace::formatPercent(double Ratio, int Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Ratio * 100.0);
  return Buf;
}

std::string dynace::formatCount(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  Out.reserve(Digits.size() + Digits.size() / 3);
  size_t Lead = Digits.size() % 3;
  if (Lead == 0)
    Lead = 3;
  for (size_t I = 0, E = Digits.size(); I != E; ++I) {
    if (I != 0 && (I - Lead) % 3 == 0 && I >= Lead)
      Out.push_back(',');
    Out.push_back(Digits[I]);
  }
  return Out;
}

std::string dynace::formatScientific(double Value, int Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*E", Decimals, Value);
  return Buf;
}

std::string dynace::formatFixed(double Value, int Decimals) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}
