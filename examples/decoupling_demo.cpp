//===- examples/decoupling_demo.cpp - CU decoupling up close --------------==//
//
// Demonstrates the paper's central mechanism on a hand-built nested
// program: a large outer phase (L2-hotspot sized) encloses a small inner
// kernel (L1D-hotspot sized). The ACE manager classifies each hotspot by
// its inclusive dynamic size and assigns it the configurable unit whose
// reconfiguration interval matches — the inner kernel tunes the L1D cache,
// the outer phase tunes the L2 — and the run prints each hotspot's tuning
// trace and final choice.
//
// Usage: decoupling_demo
//
//===----------------------------------------------------------------------===//

#include "isa/MethodBuilder.h"
#include "sim/System.h"
#include "support/Format.h"

#include <cmath>
#include <cstdio>

using namespace dynace;

namespace {

/// Emits a masked array walk: r0 = salt, clobbers r1..r6.
void emitScan(MethodBuilder &B, uint64_t Base, uint64_t Words,
              int64_t Iters, int64_t Stride) {
  B.iconst(1, 0);
  B.iconst(2, static_cast<int64_t>(Base));
  B.iconst(3, static_cast<int64_t>(Words - 1));
  B.iconst(4, 0);
  MethodBuilder::Label Top = B.newLabel();
  B.bind(Top);
  B.muli(5, 1, Stride);
  B.add(5, 5, 0);
  B.and_(5, 5, 3);
  B.loadIdx(6, 2, 5);
  B.add(4, 4, 6);
  B.storeIdx(2, 5, 4);
  B.addi(1, 1, 1);
  B.bri(CondKind::Lt, 1, Iters, Top);
}

} // namespace

int main() {
  Program Prog;
  // Inner kernel: 2 KB working set, ~14K instructions per invocation.
  uint64_t InnerArr = Prog.addGlobal(256);
  MethodBuilder Inner("inner_kernel");
  emitScan(Inner, InnerArr, 256, 1750, 1);
  Inner.ret(4);
  MethodId InnerId = Prog.addMethod(Inner.take());

  // Outer phase: 16 KB working set scanned by lines, plus 5 inner calls;
  // ~90K instructions per invocation.
  uint64_t OuterArr = Prog.addGlobal(2048);
  MethodBuilder Outer("outer_phase");
  emitScan(Outer, OuterArr, 2048, 2000, 8);
  Outer.iconst(7, 0);
  MethodBuilder::Label CallTop = Outer.newLabel();
  Outer.bind(CallTop);
  Outer.add(8, 0, 7);
  Outer.call(9, InnerId, 8, 1);
  Outer.addi(7, 7, 1);
  Outer.bri(CondKind::Lt, 7, 5, CallTop);
  Outer.ret(4);
  MethodId OuterId = Prog.addMethod(Outer.take());

  MethodBuilder Main("main");
  Main.iconst(1, 0);
  MethodBuilder::Label Loop = Main.newLabel();
  Main.bind(Loop);
  Main.mov(2, 1);
  Main.call(3, OuterId, 2, 1);
  Main.addi(1, 1, 1);
  Main.bri(CondKind::Lt, 1, 250, Loop);
  Main.halt();
  Prog.setEntry(Prog.addMethod(Main.take()));
  if (Status S = Prog.finalize(); !S) {
    std::fprintf(stderr, "bad program: %s\n", S.toString().c_str());
    return 1;
  }

  SimulationOptions Opts;
  Opts.SchemeKind = Scheme::Hotspot;
  System Sys(Prog, Opts);
  SimulationResult R = Sys.run();

  const char *CuNames[] = {"L1D", "L2", "all"};
  const char *L1DSizes[] = {"8KB", "4KB", "2KB", "1KB"};
  const char *L2Sizes[] = {"128KB", "64KB", "32KB", "16KB"};
  for (MethodId Id : {InnerId, OuterId}) {
    const HotspotAceData &H = Sys.aceManager()->hotspotData(Id);
    const Method &M = Prog.method(Id);
    std::printf("%s:\n", M.Name.c_str());
    std::printf("  measured size : %.0f instructions/invocation\n",
                Sys.doSystem()->hotspotSize(Id));
    std::printf("  CU class      : %s (decoupling by size band)\n",
                H.CuClass >= 0 ? CuNames[H.CuClass] : "all");
    std::printf("  tuning trace  :");
    for (size_t C = 0; C != H.MeasuredIpc.size(); ++C) {
      if (std::isnan(H.MeasuredIpc[C]))
        continue;
      std::printf(" [%s ipc %.2f]",
                  H.CuClass == 1 ? L2Sizes[C] : L1DSizes[C],
                  H.MeasuredIpc[C]);
    }
    std::printf("\n  chosen config : %s\n",
                H.CuClass == 1 ? L2Sizes[H.BestConfig]
                               : L1DSizes[H.BestConfig]);
  }
  std::printf("\nrun: %llu instructions, %llu cycles (IPC %.2f), "
              "L1D reconfigs %llu, L2 reconfigs %llu\n",
              static_cast<unsigned long long>(R.Instructions),
              static_cast<unsigned long long>(R.Cycles), R.Ipc,
              static_cast<unsigned long long>(R.L1DHardwareReconfigs),
              static_cast<unsigned long long>(R.L2HardwareReconfigs));
  return 0;
}
