//===- examples/custom_workload.cpp - Bring your own benchmark ------------==//
//
// Shows how to define a new WorkloadProfile — your own synthetic benchmark
// with a chosen method population, working-set skew and phase behavior —
// generate it, and evaluate all three management schemes on it.
//
// Usage: custom_workload [max_instructions]
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "sim/Reports.h"
#include "support/Format.h"
#include "workloads/WorkloadGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace dynace;

int main(int argc, char **argv) {
  // A bimodal workload: most methods stream tiny arrays (happy at the
  // smallest caches), a few gorge on large ones — a caricature of db.
  WorkloadProfile P;
  P.Name = "bimodal-demo";
  P.Description = "custom demo workload with bimodal working sets";
  P.Seed = 42;
  P.NumLeaves = 60;
  P.NumMids = 24;
  P.NumRegions = 8;
  P.NumSegments = 4;
  P.OuterIterations = 6;
  P.SegmentRepeats = 6;
  P.MidSizeMin = 14000;
  P.MidSizeMax = 40000;
  P.RegionSizeMin = 60000;
  P.RegionSizeMax = 150000;
  P.LeafFootMin = 16;
  P.LeafFootMax = 64;
  P.MidFootMin = 32;
  P.MidFootMax = 128;
  P.MidFootBigWords = 4096;
  P.BigFootprintFraction = 0.15;
  P.RegionFootMin = 256;
  P.RegionFootMax = 1024;

  GeneratedWorkload W = WorkloadGenerator::generate(P);
  std::printf("generated '%s': %zu methods, %llu static instructions, "
              "~%.0fM dynamic instructions\n",
              P.Name.c_str(), W.Prog.numMethods(),
              static_cast<unsigned long long>(
                  W.Prog.staticInstructionCount()),
              W.EstimatedInstructions / 1e6);

  SimulationOptions Opts = ExperimentRunner::defaultOptions();
  if (argc > 1)
    Opts.MaxInstructions = std::strtoull(argv[1], nullptr, 10);

  ExperimentRunner Runner(Opts);
  const BenchmarkRun &Run = Runner.run(P);

  auto Pct = [](double X) { return formatPercent(X, 1); };
  std::printf("\n%-10s %12s %12s %10s\n", "", "L1D energy", "L2 energy",
              "slowdown");
  std::printf("%-10s %12s %12s %10s\n", "BBV",
              Pct(BenchmarkRun::reduction(Run.Bbv.L1DEnergy.total(),
                                          Run.Baseline.L1DEnergy.total()))
                  .c_str(),
              Pct(BenchmarkRun::reduction(Run.Bbv.L2Energy.total(),
                                          Run.Baseline.L2Energy.total()))
                  .c_str(),
              Pct(BenchmarkRun::slowdown(Run.Bbv.Cycles,
                                         Run.Baseline.Cycles))
                  .c_str());
  std::printf("%-10s %12s %12s %10s\n", "hotspot",
              Pct(BenchmarkRun::reduction(Run.Hotspot.L1DEnergy.total(),
                                          Run.Baseline.L1DEnergy.total()))
                  .c_str(),
              Pct(BenchmarkRun::reduction(Run.Hotspot.L2Energy.total(),
                                          Run.Baseline.L2Energy.total()))
                  .c_str(),
              Pct(BenchmarkRun::slowdown(Run.Hotspot.Cycles,
                                         Run.Baseline.Cycles))
                  .c_str());

  std::vector<BenchmarkRun> Runs = {Run};
  std::cout << '\n';
  printTable4(std::cout, Runs);
  return 0;
}
