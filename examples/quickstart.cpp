//===- examples/quickstart.cpp - Minimal end-to-end run -------------------==//
//
// Builds a tiny bytecode program by hand, runs it under the baseline and
// hotspot schemes, and prints cache energy and performance — the smallest
// possible tour of the DynACE public API.
//
// Usage: quickstart [max_instructions]
//
//===----------------------------------------------------------------------===//

#include "isa/MethodBuilder.h"
#include "sim/ExperimentRunner.h"
#include "sim/System.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>

using namespace dynace;

/// Builds a program with one hot kernel: main repeatedly calls a method
/// that scans a small array (so the tuner can shrink the caches safely).
static Program buildProgram() {
  Program Prog;

  // A 16 KB array (2048 words) — comfortably inside an 8 KB+16 KB... no:
  // it fits the 16 KB L1D setting and easily fits every L2 setting.
  uint64_t ArrayWords = 2048;
  uint64_t Base = Prog.addGlobal(ArrayWords);

  // kernel(salt): walks the array 4000 times.
  MethodBuilder K("kernel");
  K.iconst(1, 0);                                  // i = 0
  K.iconst(2, static_cast<int64_t>(Base));         // base
  K.iconst(3, static_cast<int64_t>(ArrayWords - 1)); // mask
  K.iconst(4, 0);                                  // acc
  MethodBuilder::Label Top = K.newLabel();
  K.bind(Top);
  K.add(5, 1, 0);        // idx = i + salt
  K.and_(5, 5, 3);       // idx &= mask
  K.loadIdx(6, 2, 5);    // v = A[idx]
  K.add(4, 4, 6);        // acc += v
  K.storeIdx(2, 5, 4);   // A[idx] = acc
  K.addi(1, 1, 1);       // ++i
  K.bri(CondKind::Lt, 1, 4000, Top);
  K.ret(4);
  MethodId Kernel = Prog.addMethod(K.take());

  // main: calls kernel 2000 times with varying salts.
  MethodBuilder M("main");
  M.iconst(1, 0);
  MethodBuilder::Label Loop = M.newLabel();
  M.bind(Loop);
  M.mov(2, 1);
  M.call(3, Kernel, /*FirstArg=*/2, /*NumArgs=*/1);
  M.addi(1, 1, 1);
  M.bri(CondKind::Lt, 1, 2000, Loop);
  M.halt();
  Prog.setEntry(Prog.addMethod(M.take()));

  if (dynace::Status S = Prog.finalize(); !S) {
    std::fprintf(stderr, "program invalid: %s\n", S.toString().c_str());
    std::exit(1);
  }
  return Prog;
}

int main(int argc, char **argv) {
  uint64_t MaxInstr = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 0;

  Program Prog = buildProgram();

  SimulationOptions Opts;
  Opts.MaxInstructions = MaxInstr;

  Opts.SchemeKind = Scheme::Baseline;
  SimulationResult Base = System(Prog, Opts).run();

  Opts.SchemeKind = Scheme::Hotspot;
  SimulationResult Hot = System(Prog, Opts).run();

  std::printf("baseline : %llu instrs, %llu cycles, IPC %.2f\n",
              static_cast<unsigned long long>(Base.Instructions),
              static_cast<unsigned long long>(Base.Cycles), Base.Ipc);
  std::printf("hotspot  : %llu instrs, %llu cycles, IPC %.2f\n",
              static_cast<unsigned long long>(Hot.Instructions),
              static_cast<unsigned long long>(Hot.Cycles), Hot.Ipc);
  std::printf("hotspots detected: %llu (avg size %.0f instrs)\n",
              static_cast<unsigned long long>(Hot.Do.NumHotspots),
              Hot.Do.AvgHotspotSize);
  std::printf("L1D energy: baseline %.2f uJ -> hotspot %.2f uJ (%s saved)\n",
              Base.L1DEnergy.total() / 1e3, Hot.L1DEnergy.total() / 1e3,
              formatPercent(BenchmarkRun::reduction(Hot.L1DEnergy.total(),
                                                    Base.L1DEnergy.total()),
                            1)
                  .c_str());
  std::printf("L2  energy: baseline %.2f uJ -> hotspot %.2f uJ (%s saved)\n",
              Base.L2Energy.total() / 1e3, Hot.L2Energy.total() / 1e3,
              formatPercent(BenchmarkRun::reduction(Hot.L2Energy.total(),
                                                    Base.L2Energy.total()),
                            1)
                  .c_str());
  std::printf("slowdown vs baseline: %s\n",
              formatPercent(
                  BenchmarkRun::slowdown(Hot.Cycles, Base.Cycles), 2)
                  .c_str());
  return 0;
}
