//===- examples/specjvm_compare.cpp - One benchmark, three schemes --------==//
//
// Runs one synthetic SPECjvm98 benchmark under the baseline, BBV and
// hotspot schemes and prints the per-benchmark slice of the paper's
// evaluation: hotspot statistics, phase statistics, energy reductions and
// slowdown.
//
// Usage: specjvm_compare [benchmark=compress] [max_instructions]
//
//===----------------------------------------------------------------------===//

#include "sim/ExperimentRunner.h"
#include "sim/Reports.h"
#include "support/Format.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

using namespace dynace;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "compress";
  const WorkloadProfile *Profile = findProfile(Name);
  if (!Profile) {
    std::fprintf(stderr, "unknown benchmark '%s'; known:", Name.c_str());
    for (const WorkloadProfile &P : specjvm98Profiles())
      std::fprintf(stderr, " %s", P.Name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  SimulationOptions Opts = ExperimentRunner::defaultOptions();
  if (argc > 2)
    Opts.MaxInstructions = std::strtoull(argv[2], nullptr, 10);

  ExperimentRunner Runner(Opts);
  const BenchmarkRun &Run = Runner.run(*Profile);

  std::vector<BenchmarkRun> Runs = {Run};
  // Residency diagnostics: which settings served the accesses.
  auto PrintResidency = [](const char *Label,
                           const std::vector<uint64_t> &A) {
    uint64_t Total = 0;
    for (uint64_t V : A)
      Total += V;
    std::printf("%s residency:", Label);
    for (uint64_t V : A)
      std::printf(" %.1f%%", Total ? 100.0 * static_cast<double>(V) /
                                         static_cast<double>(Total)
                                   : 0.0);
    std::printf("\n");
  };
  PrintResidency("hotspot L1D (64/32/16/8K)",
                 Run.Hotspot.L1DAccessesBySetting);
  PrintResidency("hotspot L2 (1M/512/256/128K)",
                 Run.Hotspot.L2AccessesBySetting);
  PrintResidency("bbv     L1D (64/32/16/8K)", Run.Bbv.L1DAccessesBySetting);
  PrintResidency("bbv     L2 (1M/512/256/128K)",
                 Run.Bbv.L2AccessesBySetting);
  auto PrintRun = [](const char *Label, const SimulationResult &R) {
    std::printf("%-9s IPC %.3f cycles %llu L1Dmiss %.2f%% L2miss %.2f%% "
                "bpWrong %.2f%% L1Drc %llu L2rc %llu memE %.0fuJ\n",
                Label, R.Ipc, static_cast<unsigned long long>(R.Cycles),
                100.0 * R.L1DStats.missRate(), 100.0 * R.L2Stats.missRate(),
                100.0 * R.BranchMispredictRate,
                static_cast<unsigned long long>(R.L1DHardwareReconfigs),
                static_cast<unsigned long long>(R.L2HardwareReconfigs),
                R.MemoryEnergy / 1e3);
  };
  PrintRun("baseline", Run.Baseline);
  PrintRun("bbv", Run.Bbv);
  PrintRun("hotspot", Run.Hotspot);
  std::printf("\n");
  printTable4(std::cout, Runs);
  std::cout << '\n';
  printTable5(std::cout, Runs);
  std::cout << '\n';
  printTable6(std::cout, Runs);
  std::cout << '\n';
  printFigure1(std::cout, Runs);
  std::cout << '\n';
  printFigure3(std::cout, Runs);
  std::cout << '\n';
  printFigure4(std::cout, Runs);
  return 0;
}
