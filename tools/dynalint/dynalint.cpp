//===- tools/dynalint/dynalint.cpp - Static IR linter CLI -----------------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynalint — the standalone front end of the static verifier
// (analysis/Verifier.h, DESIGN.md section 13). Lints the programs the
// built-in benchmark generators produce — IR well-formedness plus the
// specializer's fusion hook-boundary rule (analysis/Fusion.h) and,
// with --dataflow, the abstract-interpretation diagnostics
// (analysis/Dataflow.h, DESIGN.md section 18) — and dumps CFGs, call
// graphs and dataflow summaries as Graphviz DOT.
//
//   dynalint --all                      lint every built-in benchmark
//   dynalint compress db                lint the named benchmarks
//   dynalint --list                     list benchmark names
//   dynalint --dataflow --all           also run the dataflow diagnostics
//   dynalint --zipf-sweep --all         lint the theta-sweep variants too
//   dynalint --trace capture.trace      lint a trace-frontend program
//                                       ("-" reads stdin)
//   dynalint --dot-cfg main compress    dump the DOT CFG of one method
//   dynalint --dot-callgraph compress   dump the DOT call graph
//   dynalint --dot-dataflow main db     dump the DOT dataflow summary
//
// Options: --gap N (reconfiguration min gap, default 1), --no-dead
// (skip dead-block diagnostics), --max-diags N, --quiet (per-benchmark
// summaries only on failure).
//
// Exit status: 0 when every linted program is free of Error-severity
// diagnostics (dataflow warnings — dead stores, use-before-def, constant
// branch guards — are printed but advisory), 1 when any error was
// reported, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Dataflow.h"
#include "analysis/Fusion.h"
#include "analysis/Verifier.h"
#include "support/Env.h"
#include "workloads/TraceFrontend.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace dynace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [--all | benchmark...]\n"
               "  --all              lint every built-in benchmark\n"
               "  --list             list benchmark names and exit\n"
               "  --dataflow         also run the dataflow diagnostics\n"
               "                     (dead-store, use-before-def,\n"
               "                     provably-trapping, always-false-guard)\n"
               "  --zipf-sweep       additionally lint the zipf theta-sweep\n"
               "                     variants of each selected benchmark\n"
               "  --trace FILE       lint the program compiled from a\n"
               "                     dynatrace capture ('-' reads stdin)\n"
               "  --dot-cfg NAME     dump the DOT CFG of method NAME (or a "
               "numeric id)\n"
               "  --dot-callgraph    dump the DOT call graph\n"
               "  --dot-dataflow NAME  dump the DOT dataflow summary of "
               "method NAME\n"
               "  --gap N            reconfiguration min gap in instructions "
               "(default 1)\n"
               "  --no-dead          do not flag unreachable blocks\n"
               "  --max-diags N      stop after N diagnostics per program "
               "(default 64)\n"
               "  --quiet            print per-benchmark lines only on "
               "failure\n",
               Argv0);
  return 2;
}

/// Resolves \p Name to a method id: an exact method-name match, else a
/// plain decimal id. \returns the id, or numMethods() when unresolved.
MethodId resolveMethod(const Program &P, const std::string &Name) {
  for (MethodId Id = 0; Id != P.numMethods(); ++Id)
    if (P.method(Id).Name == Name)
      return Id;
  if (std::optional<uint64_t> Id = parseUnsignedInt(Name.c_str());
      Id && *Id < P.numMethods())
    return static_cast<MethodId>(*Id);
  return static_cast<MethodId>(P.numMethods());
}

/// What one lint pass found.
struct LintCounts {
  size_t Errors = 0;
  size_t Warnings = 0;
};

/// Lints one program (a generated benchmark, a sweep variant or a
/// compiled trace) under \p Name. \returns the diagnostic counts by
/// severity; only errors gate the exit status.
LintCounts lintProgram(const std::string &Name, const Program &P,
                       const analysis::VerifierOptions &Opts, bool Quiet,
                       const std::string &DotCfgMethod, bool DotCallGraph,
                       const std::string &DotDataflowMethod) {
  LintCounts Counts;
  if (!DotCfgMethod.empty() || !DotDataflowMethod.empty()) {
    const std::string &Wanted =
        !DotCfgMethod.empty() ? DotCfgMethod : DotDataflowMethod;
    MethodId Id = resolveMethod(P, Wanted);
    if (Id >= P.numMethods()) {
      std::fprintf(stderr, "dynalint: %s: no method named '%s'\n",
                   Name.c_str(), Wanted.c_str());
      Counts.Errors = 1;
      return Counts;
    }
    const Method &M = P.method(Id);
    const analysis::Cfg G = analysis::Cfg::build(M);
    if (!DotCfgMethod.empty()) {
      std::fputs(G.toDot(M).c_str(), stdout);
    } else {
      const analysis::MethodDataflow DF =
          analysis::analyzeMethod(P, M, G, analysis::maxEntryArgs(P)[Id]);
      std::fputs(analysis::dataflowToDot(P, M, G, DF).c_str(), stdout);
    }
    return Counts;
  }
  if (DotCallGraph) {
    std::fputs(analysis::CallGraph::build(P).toDot(P).c_str(), stdout);
    return Counts;
  }

  std::vector<analysis::Diagnostic> Diags = analysis::verifyProgram(P, Opts);

  // Fusion hook-boundary lint: derive the densest pair/triple plan the
  // specializer could select from each method's fusible runs and push it
  // back through the plan verifier. A FusionAcrossBoundary diagnostic
  // here means the run enumerator and the hook-boundary verifier
  // disagree — exactly the defect Specializer::build voids a method's
  // fusion over at runtime, surfaced statically.
  size_t FusionGroups = 0;
  for (MethodId Id = 0; Id != P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    analysis::Cfg G = analysis::Cfg::build(M);
    std::vector<analysis::FusionGroup> Plan;
    for (const analysis::FusionRun &R : analysis::fusibleRuns(M, G)) {
      uint32_t I = R.First;
      const uint32_t End = R.First + R.Len;
      while (End - I >= 2) {
        uint32_t Len = End - I >= 3 ? 3 : 2;
        Plan.push_back({I, Len});
        I += Len;
      }
    }
    FusionGroups += Plan.size();
    std::vector<analysis::Diagnostic> FusionDiags =
        analysis::verifyFusionPlan(P, Id, Plan);
    Diags.insert(Diags.end(), FusionDiags.begin(), FusionDiags.end());
  }

  for (const analysis::Diagnostic &D : Diags) {
    const bool IsError =
        analysis::diagSeverity(D.Kind) == analysis::DiagSeverity::Error;
    ++(IsError ? Counts.Errors : Counts.Warnings);
    std::fprintf(stderr, "dynalint: %s: %s%s\n", Name.c_str(),
                 IsError ? "" : "warning: ", D.render(P).c_str());
  }
  if (Counts.Errors)
    std::fprintf(stderr, "dynalint: %s: FAILED (%zu error%s, %zu warning%s)\n",
                 Name.c_str(), Counts.Errors, Counts.Errors == 1 ? "" : "s",
                 Counts.Warnings, Counts.Warnings == 1 ? "" : "s");
  else if (!Quiet)
    std::printf("dynalint: %s: OK (%zu methods, %llu instructions, "
                "%zu fusion groups, %zu warning%s)\n",
                Name.c_str(), P.numMethods(),
                static_cast<unsigned long long>(P.staticInstructionCount()),
                FusionGroups, Counts.Warnings,
                Counts.Warnings == 1 ? "" : "s");
  return Counts;
}

/// Reads \p Path ("-" = stdin) fully. \returns false on I/O failure.
bool readFileOrStdin(const std::string &Path, std::string &Out) {
  std::FILE *F = Path == "-" ? stdin : std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  const bool Ok = !std::ferror(F);
  if (F != stdin)
    std::fclose(F);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  analysis::VerifierOptions Opts;
  bool All = false;
  bool Quiet = false;
  bool DotCallGraph = false;
  bool ZipfSweep = false;
  std::string DotCfgMethod;
  std::string DotDataflowMethod;
  std::string TracePath;
  std::vector<std::string> Names;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (!std::strcmp(Arg, "--all")) {
      All = true;
    } else if (!std::strcmp(Arg, "--list")) {
      for (const WorkloadProfile &P : specjvm98Profiles())
        std::printf("%s\n", P.Name.c_str());
      return 0;
    } else if (!std::strcmp(Arg, "--dataflow")) {
      Opts.DataflowChecks = true;
    } else if (!std::strcmp(Arg, "--zipf-sweep")) {
      ZipfSweep = true;
    } else if (!std::strcmp(Arg, "--trace")) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      TracePath = V;
    } else if (!std::strcmp(Arg, "--dot-cfg")) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      DotCfgMethod = V;
    } else if (!std::strcmp(Arg, "--dot-callgraph")) {
      DotCallGraph = true;
    } else if (!std::strcmp(Arg, "--dot-dataflow")) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      DotDataflowMethod = V;
    } else if (!std::strcmp(Arg, "--gap")) {
      const char *V = NextValue();
      std::optional<uint64_t> N = parseUnsignedInt(V);
      if (!N)
        return usage(Argv[0]);
      Opts.ReconfigMinGap = *N;
    } else if (!std::strcmp(Arg, "--max-diags")) {
      const char *V = NextValue();
      std::optional<uint64_t> N = parseUnsignedInt(V);
      if (!N || *N == 0)
        return usage(Argv[0]);
      Opts.MaxDiagnostics = static_cast<size_t>(*N);
    } else if (!std::strcmp(Arg, "--no-dead")) {
      Opts.FlagDeadBlocks = false;
    } else if (!std::strcmp(Arg, "--quiet")) {
      Quiet = true;
    } else if (Arg[0] == '-' && std::strcmp(Arg, "-") != 0) {
      std::fprintf(stderr, "dynalint: unknown option '%s'\n", Arg);
      return usage(Argv[0]);
    } else {
      Names.push_back(Arg);
    }
  }

  if (!All && Names.empty() && TracePath.empty())
    return usage(Argv[0]);
  const bool DotDump =
      !DotCfgMethod.empty() || DotCallGraph || !DotDataflowMethod.empty();
  const size_t TargetCount = Names.size() + (TracePath.empty() ? 0 : 1) +
                             (All ? 2 : 0) + (ZipfSweep ? 2 : 0);
  if (DotDump && TargetCount != 1) {
    std::fprintf(stderr, "dynalint: DOT dumps need exactly one program\n");
    return 2;
  }

  std::vector<const WorkloadProfile *> Selected;
  if (All) {
    for (const WorkloadProfile &P : specjvm98Profiles())
      Selected.push_back(&P);
  } else {
    for (const std::string &Name : Names) {
      const WorkloadProfile *P = findProfile(Name);
      if (!P) {
        std::fprintf(stderr,
                     "dynalint: unknown benchmark '%s' (--list shows the "
                     "names)\n",
                     Name.c_str());
        return 2;
      }
      Selected.push_back(P);
    }
  }

  LintCounts Total;
  auto Accumulate = [&Total](const LintCounts &C) {
    Total.Errors += C.Errors;
    Total.Warnings += C.Warnings;
  };

  for (const WorkloadProfile *P : Selected) {
    std::vector<WorkloadProfile> Targets{*P};
    if (ZipfSweep) {
      // The theta grid the zipf-sweep bench drives (bench/
      // zipf_theta_sweep.cpp); 0.0 duplicates the base for profiles
      // without skew knobs, which is harmless and keeps the list uniform.
      for (WorkloadProfile &S :
           zipfSweepProfiles(*P, {0.0, 0.6, 0.9, 1.2}))
        Targets.push_back(std::move(S));
    }
    for (const WorkloadProfile &T : Targets) {
      GeneratedWorkload W = WorkloadGenerator::generate(T);
      Accumulate(lintProgram(T.Name, W.Prog, Opts, Quiet, DotCfgMethod,
                             DotCallGraph, DotDataflowMethod));
    }
  }

  if (!TracePath.empty()) {
    std::string Text;
    if (!readFileOrStdin(TracePath, Text)) {
      std::fprintf(stderr, "dynalint: cannot read trace '%s'\n",
                   TracePath.c_str());
      return 2;
    }
    const std::string TraceName =
        TracePath == "-" ? "<stdin>" : TracePath;
    Expected<GeneratedWorkload> W = ingestTrace(Text, TraceName);
    if (!W) {
      // A trace that fails to parse or compile is a lint failure, not a
      // usage error: the frontend runs the same strict finalize gate.
      std::fprintf(stderr, "dynalint: %s: %s\n", TraceName.c_str(),
                   W.status().message().c_str());
      Total.Errors += 1;
    } else {
      Accumulate(lintProgram(TraceName, W->Prog, Opts, Quiet, DotCfgMethod,
                             DotCallGraph, DotDataflowMethod));
    }
  }

  return Total.Errors == 0 ? 0 : 1;
}
