//===- tools/dynalint/dynalint.cpp - Static IR linter CLI -----------------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynalint — the standalone front end of the static verifier
// (analysis/Verifier.h, DESIGN.md section 13). Lints the programs the
// built-in benchmark generators produce — IR well-formedness plus the
// specializer's fusion hook-boundary rule (analysis/Fusion.h) — and
// dumps their CFGs and call graphs as Graphviz DOT.
//
//   dynalint --all                      lint every built-in benchmark
//   dynalint compress db                lint the named benchmarks
//   dynalint --list                     list benchmark names
//   dynalint --dot-cfg main compress    dump the DOT CFG of one method
//   dynalint --dot-callgraph compress   dump the DOT call graph
//
// Options: --gap N (reconfiguration min gap, default 1), --no-dead
// (skip dead-block diagnostics), --max-diags N, --quiet (per-benchmark
// summaries only on failure).
//
// Exit status: 0 when every linted program verifies clean, 1 when any
// diagnostic was reported, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"
#include "analysis/Fusion.h"
#include "analysis/Verifier.h"
#include "support/Env.h"
#include "workloads/WorkloadGenerator.h"
#include "workloads/WorkloadProfile.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace dynace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [--all | benchmark...]\n"
               "  --all              lint every built-in benchmark\n"
               "  --list             list benchmark names and exit\n"
               "  --dot-cfg NAME     dump the DOT CFG of method NAME (or a "
               "numeric id)\n"
               "  --dot-callgraph    dump the DOT call graph\n"
               "  --gap N            reconfiguration min gap in instructions "
               "(default 1)\n"
               "  --no-dead          do not flag unreachable blocks\n"
               "  --max-diags N      stop after N diagnostics per program "
               "(default 64)\n"
               "  --quiet            print per-benchmark lines only on "
               "failure\n",
               Argv0);
  return 2;
}

/// Resolves \p Name to a method id: an exact method-name match, else a
/// plain decimal id. \returns the id, or numMethods() when unresolved.
MethodId resolveMethod(const Program &P, const std::string &Name) {
  for (MethodId Id = 0; Id != P.numMethods(); ++Id)
    if (P.method(Id).Name == Name)
      return Id;
  if (std::optional<uint64_t> Id = parseUnsignedInt(Name.c_str());
      Id && *Id < P.numMethods())
    return static_cast<MethodId>(*Id);
  return static_cast<MethodId>(P.numMethods());
}

/// Lints one generated benchmark. \returns the number of diagnostics.
size_t lintBenchmark(const WorkloadProfile &Profile,
                     const analysis::VerifierOptions &Opts, bool Quiet,
                     const std::string &DotCfgMethod, bool DotCallGraph) {
  GeneratedWorkload W = WorkloadGenerator::generate(Profile);
  const Program &P = W.Prog;

  if (!DotCfgMethod.empty()) {
    MethodId Id = resolveMethod(P, DotCfgMethod);
    if (Id >= P.numMethods()) {
      std::fprintf(stderr, "dynalint: %s: no method named '%s'\n",
                   Profile.Name.c_str(), DotCfgMethod.c_str());
      return 1;
    }
    std::fputs(analysis::Cfg::build(P.method(Id)).toDot(P.method(Id)).c_str(),
               stdout);
    return 0;
  }
  if (DotCallGraph) {
    std::fputs(analysis::CallGraph::build(P).toDot(P).c_str(), stdout);
    return 0;
  }

  std::vector<analysis::Diagnostic> Diags = analysis::verifyProgram(P, Opts);

  // Fusion hook-boundary lint: derive the densest pair/triple plan the
  // specializer could select from each method's fusible runs and push it
  // back through the plan verifier. A FusionAcrossBoundary diagnostic
  // here means the run enumerator and the hook-boundary verifier
  // disagree — exactly the defect Specializer::build voids a method's
  // fusion over at runtime, surfaced statically.
  size_t FusionGroups = 0;
  for (MethodId Id = 0; Id != P.numMethods(); ++Id) {
    const Method &M = P.method(Id);
    analysis::Cfg G = analysis::Cfg::build(M);
    std::vector<analysis::FusionGroup> Plan;
    for (const analysis::FusionRun &R : analysis::fusibleRuns(M, G)) {
      uint32_t I = R.First;
      const uint32_t End = R.First + R.Len;
      while (End - I >= 2) {
        uint32_t Len = End - I >= 3 ? 3 : 2;
        Plan.push_back({I, Len});
        I += Len;
      }
    }
    FusionGroups += Plan.size();
    std::vector<analysis::Diagnostic> FusionDiags =
        analysis::verifyFusionPlan(P, Id, Plan);
    Diags.insert(Diags.end(), FusionDiags.begin(), FusionDiags.end());
  }

  for (const analysis::Diagnostic &D : Diags)
    std::fprintf(stderr, "dynalint: %s: %s\n", Profile.Name.c_str(),
                 D.render(P).c_str());
  if (!Diags.empty())
    std::fprintf(stderr, "dynalint: %s: FAILED (%zu diagnostic%s)\n",
                 Profile.Name.c_str(), Diags.size(),
                 Diags.size() == 1 ? "" : "s");
  else if (!Quiet)
    std::printf("dynalint: %s: OK (%zu methods, %llu instructions, "
                "%zu fusion groups)\n",
                Profile.Name.c_str(), P.numMethods(),
                static_cast<unsigned long long>(P.staticInstructionCount()),
                FusionGroups);
  return Diags.size();
}

} // namespace

int main(int Argc, char **Argv) {
  analysis::VerifierOptions Opts;
  bool All = false;
  bool Quiet = false;
  bool DotCallGraph = false;
  std::string DotCfgMethod;
  std::vector<std::string> Names;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (!std::strcmp(Arg, "--all")) {
      All = true;
    } else if (!std::strcmp(Arg, "--list")) {
      for (const WorkloadProfile &P : specjvm98Profiles())
        std::printf("%s\n", P.Name.c_str());
      return 0;
    } else if (!std::strcmp(Arg, "--dot-cfg")) {
      const char *V = NextValue();
      if (!V)
        return usage(Argv[0]);
      DotCfgMethod = V;
    } else if (!std::strcmp(Arg, "--dot-callgraph")) {
      DotCallGraph = true;
    } else if (!std::strcmp(Arg, "--gap")) {
      const char *V = NextValue();
      std::optional<uint64_t> N = parseUnsignedInt(V);
      if (!N)
        return usage(Argv[0]);
      Opts.ReconfigMinGap = *N;
    } else if (!std::strcmp(Arg, "--max-diags")) {
      const char *V = NextValue();
      std::optional<uint64_t> N = parseUnsignedInt(V);
      if (!N || *N == 0)
        return usage(Argv[0]);
      Opts.MaxDiagnostics = static_cast<size_t>(*N);
    } else if (!std::strcmp(Arg, "--no-dead")) {
      Opts.FlagDeadBlocks = false;
    } else if (!std::strcmp(Arg, "--quiet")) {
      Quiet = true;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "dynalint: unknown option '%s'\n", Arg);
      return usage(Argv[0]);
    } else {
      Names.push_back(Arg);
    }
  }

  if (!All && Names.empty())
    return usage(Argv[0]);
  if ((!DotCfgMethod.empty() || DotCallGraph) && (All || Names.size() != 1)) {
    std::fprintf(stderr, "dynalint: DOT dumps need exactly one benchmark\n");
    return 2;
  }

  std::vector<const WorkloadProfile *> Selected;
  if (All) {
    for (const WorkloadProfile &P : specjvm98Profiles())
      Selected.push_back(&P);
  } else {
    for (const std::string &Name : Names) {
      const WorkloadProfile *P = findProfile(Name);
      if (!P) {
        std::fprintf(stderr,
                     "dynalint: unknown benchmark '%s' (--list shows the "
                     "names)\n",
                     Name.c_str());
        return 2;
      }
      Selected.push_back(P);
    }
  }

  size_t TotalDiags = 0;
  for (const WorkloadProfile *P : Selected)
    TotalDiags += lintBenchmark(*P, Opts, Quiet, DotCfgMethod, DotCallGraph);
  return TotalDiags == 0 ? 0 : 1;
}
