//===- tools/dynace-top/dynace-top.cpp - Live fleet introspection ---------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynace-top — top(1)-style live view of a dynace-serve daemon. Polls the
// daemon's introspection socket (StatsRequest/StatsReply frames,
// serve/Protocol.h) and re-renders the fleet state every interval: grid
// progress, queue depths, lease/dispatch accounting and one line per
// worker with its lease and liveness.
//
//   dynace-top [--socket PATH] [--stats-socket PATH] [--interval-ms N]
//              [--once]
//
//   --socket PATH        the daemon's main socket; only used to derive
//                        the default stats socket path
//                        (default: DYNACE_SERVE_SOCKET, falling back to
//                        /tmp/dynace-serve.sock)
//   --stats-socket PATH  the introspection socket to poll (default:
//                        DYNACE_SERVE_STATS_SOCKET, falling back to
//                        "<socket>.stats")
//   --interval-ms N      refresh period, 100..60000 (default 1000)
//   --once               print one snapshot and exit (no screen clearing;
//                        the scripted smoke-test mode)
//
// Each poll opens a fresh connection, so the daemon may restart between
// refreshes without wedging the view; an unreachable daemon renders as a
// "daemon unreachable" frame and the loop keeps trying.
//
// Exit status: 0 snapshot printed (--once), 1 daemon unreachable
// (--once), 2 usage error. The refresh loop only ends on SIGINT.
//
//===----------------------------------------------------------------------===//

#include "serve/Coordinator.h"
#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "support/Env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--stats-socket PATH] "
               "[--interval-ms N] [--once]\n",
               Argv0);
  return 2;
}

/// Connects to the stats socket. \returns the fd, or -1 (quietly: an
/// unreachable daemon is a rendered state here, not an error spew).
int connectTo(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// One introspection poll over a fresh connection.
Expected<StatsReplyMsg> pollStats(const std::string &Path) {
  int Fd = connectTo(Path);
  if (Fd < 0)
    return Status::error(ErrorCode::Unavailable,
                         "cannot connect to '" + Path + "'");
  if (Status S = sendFrame(Fd, FrameType::StatsRequest,
                           encodeStatsRequest(StatsRequestMsg()));
      !S) {
    ::close(Fd);
    return S;
  }
  Expected<Frame> Reply = recvFrame(Fd, /*TimeoutMs=*/10000);
  ::close(Fd);
  if (!Reply.ok())
    return Reply.status();
  if (Reply.get().Type != FrameType::StatsReply)
    return Status::error(ErrorCode::InvalidInput,
                         std::string("unexpected ") +
                             frameTypeName(Reply.get().Type) + " frame");
  return decodeStatsReply(Reply.get().Payload);
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath =
      envString("DYNACE_SERVE_SOCKET", "/tmp/dynace-serve.sock");
  std::string StatsPath = envString("DYNACE_SERVE_STATS_SOCKET");
  uint64_t IntervalMs = 1000;
  bool Once = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (Arg == "--stats-socket" && I + 1 < argc)
      StatsPath = argv[++I];
    else if (Arg == "--interval-ms" && I + 1 < argc) {
      char *End = nullptr;
      IntervalMs = std::strtoull(argv[++I], &End, 10);
      if (End == argv[I] || *End != '\0' || IntervalMs < 100 ||
          IntervalMs > 60000)
        return usage(argv[0]);
    } else if (Arg == "--once")
      Once = true;
    else
      return usage(argv[0]);
  }
  if (StatsPath.empty())
    StatsPath = SocketPath + ".stats";

  for (;;) {
    Expected<StatsReplyMsg> S = pollStats(StatsPath);
    std::string Body = S.ok()
                           ? renderServeStats(S.get())
                           : "daemon unreachable: " +
                                 S.status().toString() + "\n";
    if (Once) {
      std::fputs(("dynace-top: " + StatsPath + "\n" + Body).c_str(),
                 stdout);
      return S.ok() ? 0 : 1;
    }
    // Home the cursor and wipe the previous frame (plain ANSI; dynace-top
    // is interactive-terminal-only by design, like top itself).
    std::fputs("\033[H\033[2J", stdout);
    std::fputs(("dynace-top: " + StatsPath + " (refresh " +
                std::to_string(IntervalMs) + " ms, ctrl-c quits)\n" + Body)
                   .c_str(),
               stdout);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
}
