//===- tools/dynatrace/dynatrace.cpp - Trace ingest CLI -------------------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynatrace — the command-line front end of the trace ingest pipeline
// (workloads/TraceFrontend.h). Parses a dynatrace-v1 text trace, compiles
// it into a Program through the strict finalize + dynalint gate, and
// optionally simulates it.
//
//   dynatrace capture.trace             ingest + print a summary
//   dynatrace --dump capture.trace      print the canonical form
//   dynatrace --simulate capture.trace  ingest + run (baseline scheme)
//   dynatrace --simulate --scheme hotspot capture.trace
//   dynatrace -                         read the trace from stdin
//   dynatrace --selftest                round-trip the embedded sample
//
// The selftest parses an embedded sample trace, re-emits its canonical
// form, re-parses that, and verifies the two canonical forms are
// byte-identical and that both compile dynalint-clean and simulate to the
// same instruction count — the round-trip smoke the sanitize gate runs.
//
// Exit status: 0 on success, 1 on a malformed or rejected trace, 2 on
// usage errors.
//
//===----------------------------------------------------------------------===//

#include "sim/System.h"
#include "workloads/TraceFrontend.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace dynace;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file.trace | ->\n"
               "  --dump             print the canonical form of the trace\n"
               "  --simulate         run the compiled trace and print\n"
               "                     instructions/cycles/IPC\n"
               "  --scheme NAME      simulation scheme: baseline, bbv or\n"
               "                     hotspot (default baseline)\n"
               "  --max-instr N      stop simulation after N instructions\n"
               "  --selftest         run the embedded round-trip check\n"
               "  --selftest-dump    print the canonical form of the\n"
               "                     embedded selftest sample (pipe into\n"
               "                     dynalint --trace -)\n",
               Argv0);
  return 2;
}

/// The embedded selftest sample: exercises every grammar production
/// (footprints, all five block counts, branchy, multi-call, comments).
const char *const kSampleTrace = R"(# dynatrace selftest sample
dynatrace 1
method hot_scan footprint=2048
  block 600 2 1 2 0
  block 200 1 0 1 0 branchy
end
method fp_kernel footprint=128
  block 300 1 0 1 4
end
method driver footprint=64
  call hot_scan 6
  block 50 1 1 1 0
  call fp_kernel 3
end
entry driver
)";

Expected<std::string> readAll(const char *Path) {
  std::FILE *F =
      std::strcmp(Path, "-") == 0 ? stdin : std::fopen(Path, "rb");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         std::string("cannot open '") + Path + "'");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool ReadFailed = std::ferror(F) != 0;
  if (F != stdin)
    std::fclose(F);
  if (ReadFailed)
    return Status::error(ErrorCode::IoError,
                         std::string("read error on '") + Path + "'");
  return Text;
}

bool parseScheme(const char *Name, Scheme &Out) {
  if (!std::strcmp(Name, "baseline"))
    Out = Scheme::Baseline;
  else if (!std::strcmp(Name, "bbv"))
    Out = Scheme::Bbv;
  else if (!std::strcmp(Name, "hotspot"))
    Out = Scheme::Hotspot;
  else
    return false;
  return true;
}

uint64_t simulate(const Program &Prog, Scheme SchemeKind, uint64_t MaxInstr,
                  bool Print) {
  SimulationOptions Opts;
  Opts.SchemeKind = SchemeKind;
  Opts.MaxInstructions = MaxInstr;
  SimulationResult R = System(Prog, Opts).run();
  if (Print)
    std::printf("simulated: %llu instrs, %llu cycles, IPC %.2f, "
                "%llu hotspots\n",
                static_cast<unsigned long long>(R.Instructions),
                static_cast<unsigned long long>(R.Cycles), R.Ipc,
                static_cast<unsigned long long>(R.Do.NumHotspots));
  return R.Instructions;
}

/// Prints the canonical form of the embedded sample, for piping into
/// other tools (notably `dynalint --trace -`). \returns 0 on success.
int selftestDump() {
  Expected<TraceSpec> Spec = parseTraceSpec(kSampleTrace, "selftest");
  if (!Spec) {
    std::fprintf(stderr, "selftest-dump: sample failed to parse: %s\n",
                 Spec.status().message().c_str());
    return 1;
  }
  std::fputs(formatTraceSpec(*Spec).c_str(), stdout);
  return 0;
}

/// Round-trips the embedded sample. \returns 0 on success.
int selftest() {
  Expected<TraceSpec> First = parseTraceSpec(kSampleTrace, "selftest");
  if (!First) {
    std::fprintf(stderr, "selftest: sample failed to parse: %s\n",
                 First.status().message().c_str());
    return 1;
  }
  std::string Canon = formatTraceSpec(*First);
  Expected<TraceSpec> Second = parseTraceSpec(Canon, "selftest-canon");
  if (!Second) {
    std::fprintf(stderr, "selftest: canonical form failed to re-parse: %s\n",
                 Second.status().message().c_str());
    return 1;
  }
  if (formatTraceSpec(*Second) != Canon) {
    std::fprintf(stderr,
                 "selftest: canonical form is not a fixed point\n");
    return 1;
  }
  Expected<GeneratedWorkload> A = compileTraceSpec(*First);
  Expected<GeneratedWorkload> B = compileTraceSpec(*Second);
  if (!A || !B) {
    std::fprintf(stderr, "selftest: compile failed: %s\n",
                 (!A ? A.status() : B.status()).message().c_str());
    return 1;
  }
  uint64_t InstrA = simulate(A->Prog, Scheme::Hotspot, 0, false);
  uint64_t InstrB = simulate(B->Prog, Scheme::Hotspot, 0, false);
  if (InstrA != InstrB || InstrA == 0) {
    std::fprintf(stderr,
                 "selftest: round-trip simulation diverged "
                 "(%llu vs %llu instructions)\n",
                 static_cast<unsigned long long>(InstrA),
                 static_cast<unsigned long long>(InstrB));
    return 1;
  }
  std::printf("selftest: ok (%zu methods, %llu instructions)\n",
              First->Methods.size(),
              static_cast<unsigned long long>(InstrA));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Dump = false, Simulate = false, SelfTest = false,
       SelfTestDump = false;
  Scheme SchemeKind = Scheme::Baseline;
  uint64_t MaxInstr = 0;
  const char *Path = nullptr;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!std::strcmp(Arg, "--dump")) {
      Dump = true;
    } else if (!std::strcmp(Arg, "--simulate")) {
      Simulate = true;
    } else if (!std::strcmp(Arg, "--selftest")) {
      SelfTest = true;
    } else if (!std::strcmp(Arg, "--selftest-dump")) {
      SelfTestDump = true;
    } else if (!std::strcmp(Arg, "--scheme")) {
      if (I + 1 >= argc || !parseScheme(argv[++I], SchemeKind))
        return usage(argv[0]);
    } else if (!std::strcmp(Arg, "--max-instr")) {
      if (I + 1 >= argc)
        return usage(argv[0]);
      char *End = nullptr;
      MaxInstr = std::strtoull(argv[++I], &End, 10);
      if (!End || *End != '\0')
        return usage(argv[0]);
    } else if (Arg[0] == '-' && std::strcmp(Arg, "-") != 0) {
      return usage(argv[0]);
    } else if (Path) {
      return usage(argv[0]);
    } else {
      Path = Arg;
    }
  }

  if (SelfTest)
    return selftest();
  if (SelfTestDump)
    return selftestDump();
  if (!Path)
    return usage(argv[0]);

  Expected<std::string> Text = readAll(Path);
  if (!Text) {
    std::fprintf(stderr, "dynatrace: %s\n",
                 Text.status().message().c_str());
    return 1;
  }

  const char *Name = std::strcmp(Path, "-") == 0 ? "<stdin>" : Path;
  Expected<TraceSpec> Spec = parseTraceSpec(*Text, Name);
  if (!Spec) {
    std::fprintf(stderr, "dynatrace: %s\n",
                 Spec.status().message().c_str());
    return 1;
  }

  if (Dump) {
    std::fputs(formatTraceSpec(*Spec).c_str(), stdout);
    return 0;
  }

  Expected<GeneratedWorkload> W = compileTraceSpec(*Spec);
  if (!W) {
    std::fprintf(stderr, "dynatrace: %s\n", W.status().message().c_str());
    return 1;
  }

  std::printf("ingested %s: %zu methods, %llu static instrs, "
              "~%.0f est dynamic instrs, dynalint clean\n",
              Name, Spec->Methods.size(),
              static_cast<unsigned long long>(
                  W->Prog.staticInstructionCount()),
              W->EstimatedInstructions);
  if (Simulate)
    simulate(W->Prog, SchemeKind, MaxInstr, true);
  return 0;
}
