//===- tools/dynace-serve/dynace-serve.cpp - Experiment daemon ------------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynace-serve — the coordinator daemon of the distributed experiment
// service (serve/Coordinator.h). Listens on a Unix-domain socket, accepts
// one client at a time, and runs each submitted (benchmark × scheme) grid
// across a fleet of forked worker processes with lease-based assignment,
// straggler re-dispatch, crash respawn and an optional write-ahead
// journal. The reply is the deterministic grid report — bit-identical to
// a serial in-process run of the same grid (`dynace-submit --local`).
//
//   dynace-serve [--socket PATH] [--once]
//
//   --socket PATH   listen here (default: DYNACE_SERVE_SOCKET, falling
//                   back to /tmp/dynace-serve.sock)
//   --once          exit after serving one grid (test harness mode)
//
// Configuration comes from the DYNACE_SERVE_* environment variables (see
// README): WORKERS, LEASE_MS, HEARTBEAT_MS, MAX_RESPAWNS, MAX_RETRIES,
// JOURNAL. A client Shutdown frame stops the daemon cleanly.
//
// Exit status: 0 clean shutdown, 1 socket/setup failure, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "serve/Coordinator.h"
#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "sim/Reports.h"
#include "support/Env.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s [--socket PATH] [--once]\n", Argv0);
  return 2;
}

/// Binds and listens on the Unix socket at \p Path (replacing any stale
/// socket file). \returns the listening fd, or -1 (message printed).
int listenOn(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "dynace-serve: socket path too long: %s\n",
                 Path.c_str());
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "dynace-serve: socket: %s\n", std::strerror(errno));
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // Replace a stale socket from a killed daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 4) != 0) {
    std::fprintf(stderr, "dynace-serve: bind/listen %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Serves one accepted client connection.
/// \returns true when the client asked the daemon to shut down.
bool serveClient(int ClientFd, int ListenFd, const ServeConfig &BaseConfig,
                 const SimulationOptions &Base) {
  Expected<Frame> F = recvFrame(ClientFd);
  if (!F.ok()) {
    std::fprintf(stderr, "dynace-serve: client receive: %s\n",
                 F.status().toString().c_str());
    return false;
  }
  if (F.get().Type == FrameType::Shutdown)
    return true;
  if (F.get().Type != FrameType::GridRequest) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({"expected a grid-request frame"}));
    return false;
  }
  Expected<GridRequestMsg> Req = decodeGridRequest(F.get().Payload);
  if (!Req.ok()) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({Req.status().toString()}));
    return false;
  }

  ServeConfig Config = BaseConfig;
  // Workers must never hold the daemon's sockets: a child keeping the
  // client fd open would keep the connection alive past a daemon crash.
  Config.CloseInChild = {ListenFd, ClientFd};

  Expected<GridResult> Grid = runGrid(Config, Base, Req.get().Cells);
  if (!Grid.ok()) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({Grid.status().toString()}));
    return false;
  }
  Expected<std::vector<BenchmarkRun>> Runs =
      assembleBenchmarkRuns(Req.get().Cells, Grid.get().Cells);
  if (!Runs.ok()) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({Runs.status().toString()}));
    return false;
  }

  std::ostringstream Report;
  printGridReport(Report, Runs.get());
  DoneMsg Done;
  Done.Report = Report.str();
  Done.Cells = Grid.get().Stats.Cells;
  Done.FailedCells = Grid.get().Stats.FailedCells;
  if (Status S = sendFrame(ClientFd, FrameType::Done, encodeDone(Done)); !S)
    std::fprintf(stderr, "dynace-serve: reply failed: %s\n",
                 S.toString().c_str());

  const GridStats &St = Grid.get().Stats;
  std::fprintf(stderr,
               "dynace-serve: grid done: %llu cells (%llu replayed, %llu "
               "inline, %llu failed), %llu dispatches (%llu re-dispatched, "
               "%llu duplicates dropped), %llu crashes, %llu respawns\n",
               static_cast<unsigned long long>(St.Cells),
               static_cast<unsigned long long>(St.ReplayedCells),
               static_cast<unsigned long long>(St.InlineCells),
               static_cast<unsigned long long>(St.FailedCells),
               static_cast<unsigned long long>(St.WorkerDispatches),
               static_cast<unsigned long long>(St.Redispatches),
               static_cast<unsigned long long>(St.DuplicateResults),
               static_cast<unsigned long long>(St.WorkerCrashes),
               static_cast<unsigned long long>(St.Respawns));
  return false;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath =
      envString("DYNACE_SERVE_SOCKET", "/tmp/dynace-serve.sock");
  bool Once = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (Arg == "--once")
      Once = true;
    else
      return usage(argv[0]);
  }

  Expected<ServeConfig> Config = ServeConfig::fromEnv();
  if (!Config.ok())
    fatalError("DYNACE_SERVE_* configuration", Config.status());
  SimulationOptions Base = ExperimentRunner::defaultOptions();

  int ListenFd = listenOn(SocketPath);
  if (ListenFd < 0)
    return 1;
  std::fprintf(stderr, "dynace-serve: listening on %s (%u workers)\n",
               SocketPath.c_str(), Config.get().Workers);

  bool ShutdownRequested = false;
  while (!ShutdownRequested) {
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "dynace-serve: accept: %s\n",
                   std::strerror(errno));
      break;
    }
    ShutdownRequested =
        serveClient(ClientFd, ListenFd, Config.get(), Base);
    ::close(ClientFd);
    if (Once)
      break;
  }
  ::close(ListenFd);
  ::unlink(SocketPath.c_str());
  std::fprintf(stderr, "dynace-serve: %s\n",
               ShutdownRequested ? "shutdown requested, exiting"
                                 : "exiting");
  return 0;
}
