//===- tools/dynace-serve/dynace-serve.cpp - Experiment daemon ------------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynace-serve — the coordinator daemon of the distributed experiment
// service (serve/Coordinator.h). Listens on a Unix-domain socket, accepts
// one client at a time, and runs each submitted (benchmark × scheme) grid
// across a fleet of forked worker processes with lease-based assignment,
// straggler re-dispatch, crash respawn and an optional write-ahead
// journal. The reply is the deterministic grid report — bit-identical to
// a serial in-process run of the same grid (`dynace-submit --local`).
//
//   dynace-serve [--socket PATH] [--stats-socket PATH] [--once]
//
//   --socket PATH        listen here (default: DYNACE_SERVE_SOCKET,
//                        falling back to /tmp/dynace-serve.sock)
//   --stats-socket PATH  introspection socket answering StatsRequest
//                        frames with live fleet state (default:
//                        DYNACE_SERVE_STATS_SOCKET, falling back to
//                        "<socket>.stats"); polled by dynace-top and
//                        dynace-submit --stats
//   --once               exit after serving one grid (test harness mode)
//
// Configuration comes from the DYNACE_SERVE_* environment variables (see
// README): WORKERS, LEASE_MS, HEARTBEAT_MS, MAX_RESPAWNS, MAX_RETRIES,
// JOURNAL. A client Shutdown frame stops the daemon cleanly.
//
// The per-grid "grid done" log line is a rendering of the process
// MetricsRegistry's serve.* counters (a before/after delta around the
// grid), not an independent tally — the human text and the DYNACE_METRICS
// dump cannot drift apart.
//
// Exit status: 0 clean shutdown, 1 socket/setup failure, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "serve/Coordinator.h"
#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "sim/Reports.h"
#include "support/Env.h"

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--stats-socket PATH] [--once]\n",
               Argv0);
  return 2;
}

/// Binds and listens on the Unix socket at \p Path (replacing any stale
/// socket file). \returns the listening fd, or -1 (message printed).
int listenOn(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "dynace-serve: socket path too long: %s\n",
                 Path.c_str());
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "dynace-serve: socket: %s\n", std::strerror(errno));
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // Replace a stale socket from a killed daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 4) != 0) {
    std::fprintf(stderr, "dynace-serve: bind/listen %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// The introspection plane: answers StatsRequest frames on the stats
/// socket with live StatsReply snapshots. Runs detached — a poll must
/// never block grid progress, and currentServeStats() orders its locks
/// so a poll cannot deadlock the coordinator either.
void statsListener(int StatsFd) {
  for (;;) {
    int ClientFd = ::accept(StatsFd, nullptr, nullptr);
    if (ClientFd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listening socket closed: the daemon is exiting.
    }
    // Serve polls on this connection until the client leaves; the
    // receive timeout bounds how long a wedged client pins the thread.
    for (;;) {
      Expected<Frame> F = recvFrame(ClientFd, /*TimeoutMs=*/10000);
      if (!F.ok() || F.get().Type != FrameType::StatsRequest)
        break;
      std::string Reply = encodeStatsReply(currentServeStats());
      if (!sendFrame(ClientFd, FrameType::StatsReply, Reply).ok())
        break;
    }
    ::close(ClientFd);
  }
}

/// Serves one accepted client connection.
/// \returns true when the client asked the daemon to shut down.
bool serveClient(int ClientFd, int ListenFd, int StatsFd,
                 const ServeConfig &BaseConfig,
                 const SimulationOptions &Base) {
  Expected<Frame> F = recvFrame(ClientFd);
  if (!F.ok()) {
    std::fprintf(stderr, "dynace-serve: client receive: %s\n",
                 F.status().toString().c_str());
    return false;
  }
  if (F.get().Type == FrameType::Shutdown)
    return true;
  if (F.get().Type != FrameType::GridRequest) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({"expected a grid-request frame"}));
    return false;
  }
  Expected<GridRequestMsg> Req = decodeGridRequest(F.get().Payload);
  if (!Req.ok()) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({Req.status().toString()}));
    return false;
  }

  ServeConfig Config = BaseConfig;
  // Workers must never hold the daemon's sockets: a child keeping the
  // client fd open would keep the connection alive past a daemon crash.
  Config.CloseInChild = {ListenFd, ClientFd, StatsFd};

  MetricsSnapshot Before = MetricsRegistry::process().snapshot();
  Expected<GridResult> Grid = runGrid(Config, Base, Req.get().Cells);
  if (!Grid.ok()) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({Grid.status().toString()}));
    return false;
  }
  Expected<std::vector<BenchmarkRun>> Runs =
      assembleBenchmarkRuns(Req.get().Cells, Grid.get().Cells);
  if (!Runs.ok()) {
    (void)sendFrame(ClientFd, FrameType::Error,
                    encodeErrorMsg({Runs.status().toString()}));
    return false;
  }

  std::ostringstream Report;
  printGridReport(Report, Runs.get());
  DoneMsg Done;
  Done.Report = Report.str();
  Done.Cells = Grid.get().Stats.Cells;
  Done.FailedCells = Grid.get().Stats.FailedCells;
  if (Status S = sendFrame(ClientFd, FrameType::Done, encodeDone(Done)); !S)
    std::fprintf(stderr, "dynace-serve: reply failed: %s\n",
                 S.toString().c_str());

  // The log line is the registry delta for this grid, rendered — the
  // serve.* counters are the source of truth, the text just displays them.
  MetricsSnapshot After = MetricsRegistry::process().snapshot();
  std::fprintf(stderr, "dynace-serve: %s\n",
               renderServeSummary(After.delta(Before)).c_str());
  return false;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath =
      envString("DYNACE_SERVE_SOCKET", "/tmp/dynace-serve.sock");
  std::string StatsPath = envString("DYNACE_SERVE_STATS_SOCKET");
  bool Once = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (Arg == "--stats-socket" && I + 1 < argc)
      StatsPath = argv[++I];
    else if (Arg == "--once")
      Once = true;
    else
      return usage(argv[0]);
  }
  if (StatsPath.empty())
    StatsPath = SocketPath + ".stats";

  Expected<ServeConfig> Config = ServeConfig::fromEnv();
  if (!Config.ok())
    fatalError("DYNACE_SERVE_* configuration", Config.status());
  SimulationOptions Base = ExperimentRunner::defaultOptions();

  int ListenFd = listenOn(SocketPath);
  if (ListenFd < 0)
    return 1;
  int StatsFd = listenOn(StatsPath);
  if (StatsFd < 0) {
    ::close(ListenFd);
    ::unlink(SocketPath.c_str());
    return 1;
  }
  // Detached on purpose: the listener blocks in accept() and every exit
  // path below ends the process, which tears it down with the socket.
  std::thread(statsListener, StatsFd).detach();
  std::fprintf(stderr,
               "dynace-serve: listening on %s (%u workers, stats on %s)\n",
               SocketPath.c_str(), Config.get().Workers, StatsPath.c_str());

  bool ShutdownRequested = false;
  while (!ShutdownRequested) {
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "dynace-serve: accept: %s\n",
                   std::strerror(errno));
      break;
    }
    ShutdownRequested =
        serveClient(ClientFd, ListenFd, StatsFd, Config.get(), Base);
    ::close(ClientFd);
    if (Once)
      break;
  }
  ::close(ListenFd);
  ::unlink(SocketPath.c_str());
  ::close(StatsFd);
  ::unlink(StatsPath.c_str());
  std::fprintf(stderr, "dynace-serve: %s\n",
               ShutdownRequested ? "shutdown requested, exiting"
                                 : "exiting");
  return 0;
}
