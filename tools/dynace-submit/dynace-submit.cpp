//===- tools/dynace-submit/dynace-submit.cpp - Serve client ---------------==//
//
// Part of the DynACE project (CGO 2005 reproduction).
//
//===----------------------------------------------------------------------===//
//
// dynace-submit — client for the dynace-serve daemon. Submits a
// (benchmark × scheme) grid over the Unix-domain socket and prints the
// daemon's deterministic grid report to stdout.
//
//   dynace-submit [--socket PATH] [--benchmarks a,b,c] [--local]
//   dynace-submit [--socket PATH] --shutdown
//   dynace-submit [--socket PATH] [--stats-socket PATH] --stats
//
//   --socket PATH      daemon socket (default: DYNACE_SERVE_SOCKET,
//                      falling back to /tmp/dynace-serve.sock)
//   --benchmarks LIST  comma-separated benchmark names (default: the
//                      seven SPECjvm98-like profiles)
//   --local            do not contact the daemon: run the same grid
//                      serially in this process and print the same
//                      report. Because serve results are deterministic
//                      and content-addressed, this output must be
//                      bit-identical to the daemon's — the invariant
//                      scripts/check_serve.sh asserts with diff.
//   --shutdown         send a Shutdown frame and exit.
//   --stats            poll the daemon's introspection socket once and
//                      print the live fleet state (grid progress, queue
//                      depths, per-worker leases).
//   --stats-socket     the introspection socket (default:
//                      DYNACE_SERVE_STATS_SOCKET, falling back to
//                      "<socket>.stats").
//
// Exit status: 0 success, 1 transport/grid failure (daemon Error frames
// are printed to stderr), 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "serve/Coordinator.h"
#include "serve/Protocol.h"
#include "serve/Wire.h"
#include "sim/Reports.h"
#include "support/Env.h"
#include "workloads/WorkloadProfile.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace dynace;
using namespace dynace::serve;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--benchmarks a,b,c] [--local]\n"
               "       %s [--socket PATH] --shutdown\n"
               "       %s [--socket PATH] [--stats-socket PATH] --stats\n",
               Argv0, Argv0, Argv0);
  return 2;
}

std::vector<std::string> splitNames(const std::string &List) {
  std::vector<std::string> Names;
  std::string Cur;
  for (char C : List) {
    if (C == ',') {
      if (!Cur.empty())
        Names.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Names.push_back(Cur);
  return Names;
}

/// Connects to the daemon socket. \returns the fd, or -1 (message
/// printed).
int connectTo(const std::string &Path) {
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "dynace-submit: socket path too long: %s\n",
                 Path.c_str());
    return -1;
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::fprintf(stderr, "dynace-submit: socket: %s\n", std::strerror(errno));
    return -1;
  }
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    std::fprintf(stderr, "dynace-submit: connect %s: %s\n", Path.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// The --local comparison baseline: runs every cell serially in this
/// process through the same execution core (runExperimentCell) and prints
/// the same deterministic report — deliberately without touching the
/// coordinator, so a serve-vs-local diff exercises the whole distributed
/// path.
int runLocal(const std::vector<std::string> &Benchmarks) {
  SimulationOptions Base = ExperimentRunner::defaultOptions();
  std::vector<CellSpec> Cells = gridForBenchmarks(Benchmarks);
  std::vector<GridCell> Results;
  Results.reserve(Cells.size());
  for (const CellSpec &Spec : Cells) {
    const WorkloadProfile *Profile = findProfile(Spec.Benchmark);
    if (!Profile) {
      std::fprintf(stderr, "dynace-submit: unknown benchmark: %s\n",
                   Spec.Benchmark.c_str());
      return 1;
    }
    auto [Result, Outcome] =
        runExperimentCell(*Profile, Spec.SchemeKind, Base);
    Results.push_back({std::move(Result), Outcome, /*CacheKey=*/""});
  }
  Expected<std::vector<BenchmarkRun>> Runs =
      assembleBenchmarkRuns(Cells, Results);
  if (!Runs.ok()) {
    std::fprintf(stderr, "dynace-submit: %s\n",
                 Runs.status().toString().c_str());
    return 1;
  }
  printGridReport(std::cout, Runs.get());
  return 0;
}

/// --stats: one introspection poll, printed as renderServeStats() text.
int queryStats(const std::string &StatsPath) {
  int Fd = connectTo(StatsPath);
  if (Fd < 0)
    return 1;
  if (Status S = sendFrame(Fd, FrameType::StatsRequest,
                           encodeStatsRequest(StatsRequestMsg()));
      !S) {
    std::fprintf(stderr, "dynace-submit: stats request: %s\n",
                 S.toString().c_str());
    ::close(Fd);
    return 1;
  }
  Expected<Frame> Reply = recvFrame(Fd, /*TimeoutMs=*/10000);
  ::close(Fd);
  if (!Reply.ok()) {
    std::fprintf(stderr, "dynace-submit: stats receive: %s\n",
                 Reply.status().toString().c_str());
    return 1;
  }
  if (Reply.get().Type != FrameType::StatsReply) {
    std::fprintf(stderr, "dynace-submit: unexpected %s frame\n",
                 frameTypeName(Reply.get().Type));
    return 1;
  }
  Expected<StatsReplyMsg> S = decodeStatsReply(Reply.get().Payload);
  if (!S.ok()) {
    std::fprintf(stderr, "dynace-submit: bad stats frame: %s\n",
                 S.status().toString().c_str());
    return 1;
  }
  std::cout << "dynace-serve: " << renderServeStats(S.get());
  return 0;
}

int sendShutdown(const std::string &SocketPath) {
  int Fd = connectTo(SocketPath);
  if (Fd < 0)
    return 1;
  Status S = sendFrame(Fd, FrameType::Shutdown, {});
  ::close(Fd);
  if (!S) {
    std::fprintf(stderr, "dynace-submit: shutdown: %s\n",
                 S.toString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dynace-submit: shutdown sent\n");
  return 0;
}

int submitGrid(const std::string &SocketPath,
               const std::vector<std::string> &Benchmarks) {
  GridRequestMsg Req;
  Req.Cells = gridForBenchmarks(Benchmarks);
  int Fd = connectTo(SocketPath);
  if (Fd < 0)
    return 1;
  if (Status S = sendFrame(Fd, FrameType::GridRequest, encodeGridRequest(Req));
      !S) {
    std::fprintf(stderr, "dynace-submit: send: %s\n", S.toString().c_str());
    ::close(Fd);
    return 1;
  }
  // A grid can take minutes; block until the daemon replies or drops the
  // connection (recvFrame maps EOF to Unavailable).
  Expected<Frame> Reply = recvFrame(Fd, /*TimeoutMs=*/-1);
  ::close(Fd);
  if (!Reply.ok()) {
    std::fprintf(stderr, "dynace-submit: receive: %s\n",
                 Reply.status().toString().c_str());
    return 1;
  }
  if (Reply.get().Type == FrameType::Error) {
    Expected<ErrorMsg> Err = decodeErrorMsg(Reply.get().Payload);
    std::fprintf(stderr, "dynace-submit: daemon error: %s\n",
                 Err.ok() ? Err.get().Reason.c_str() : "<undecodable>");
    return 1;
  }
  if (Reply.get().Type != FrameType::Done) {
    std::fprintf(stderr, "dynace-submit: unexpected %s frame\n",
                 frameTypeName(Reply.get().Type));
    return 1;
  }
  Expected<DoneMsg> Done = decodeDone(Reply.get().Payload);
  if (!Done.ok()) {
    std::fprintf(stderr, "dynace-submit: bad done frame: %s\n",
                 Done.status().toString().c_str());
    return 1;
  }
  std::cout << Done.get().Report;
  std::fprintf(stderr, "dynace-submit: %llu cells, %llu failed\n",
               static_cast<unsigned long long>(Done.get().Cells),
               static_cast<unsigned long long>(Done.get().FailedCells));
  return Done.get().FailedCells == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  std::string SocketPath =
      envString("DYNACE_SERVE_SOCKET", "/tmp/dynace-serve.sock");
  std::string StatsPath = envString("DYNACE_SERVE_STATS_SOCKET");
  std::vector<std::string> Benchmarks;
  bool Local = false;
  bool Shutdown = false;
  bool Stats = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--socket" && I + 1 < argc)
      SocketPath = argv[++I];
    else if (Arg == "--stats-socket" && I + 1 < argc)
      StatsPath = argv[++I];
    else if (Arg == "--benchmarks" && I + 1 < argc)
      Benchmarks = splitNames(argv[++I]);
    else if (Arg == "--local")
      Local = true;
    else if (Arg == "--shutdown")
      Shutdown = true;
    else if (Arg == "--stats")
      Stats = true;
    else
      return usage(argv[0]);
  }
  if (Local + Shutdown + Stats > 1)
    return usage(argv[0]);

  if (Benchmarks.empty())
    for (const WorkloadProfile &P : specjvm98Profiles())
      Benchmarks.push_back(P.Name);

  if (Stats)
    return queryStats(StatsPath.empty() ? SocketPath + ".stats" : StatsPath);
  if (Shutdown)
    return sendShutdown(SocketPath);
  if (Local)
    return runLocal(Benchmarks);
  return submitGrid(SocketPath, Benchmarks);
}
